//! Communication-complexity accounting.

/// Per-run communication metrics, the raw material of every experiment table.
///
/// A message is charged at *send* time (when it is placed on an edge); the paper's
/// quantities map onto this struct as follows:
///
/// * **total communication complexity** — [`RunMetrics::total_bits`];
/// * **required bandwidth** (maximum bits over a single edge) —
///   [`RunMetrics::max_edge_bits`];
/// * **maximum message length** — [`RunMetrics::max_message_bits`];
/// * number of messages — [`RunMetrics::messages_sent`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RunMetrics {
    /// Total number of messages placed on edges (including the root's `σ₀`).
    pub messages_sent: u64,
    /// Total number of messages delivered to their destination.
    pub messages_delivered: u64,
    /// Messages discarded by a faulty scheduler ([`SchedulerAction::Drop`]).
    ///
    /// Always 0 under reliable schedulers, so fault-free runs stay
    /// bit-identical to their historical metrics.
    ///
    /// [`SchedulerAction::Drop`]: crate::scheduler::SchedulerAction::Drop
    pub messages_dropped: u64,
    /// Adversary-injected duplicates
    /// ([`SchedulerAction::Duplicate`](crate::scheduler::SchedulerAction::Duplicate)).
    /// Duplicates are not protocol sends: they are excluded from
    /// [`RunMetrics::messages_sent`], [`RunMetrics::total_bits`] and the
    /// per-edge accounting — only bits actually sent are charged.
    pub messages_duplicated: u64,
    /// Messages consumed while their destination was crashed
    /// ([`SchedulerAction::NodeDown`](crate::scheduler::SchedulerAction::NodeDown)).
    pub crashed_deliveries: u64,
    /// Sum of the wire sizes of all sent messages, in bits.
    pub total_bits: u64,
    /// Largest single message, in bits.
    pub max_message_bits: u64,
    /// Number of messages sent per edge, indexed by edge id.
    pub per_edge_messages: Vec<u64>,
    /// Bits sent per edge, indexed by edge id.
    pub per_edge_bits: Vec<u64>,
}

impl RunMetrics {
    /// Creates zeroed metrics for a graph with `edge_count` edges.
    pub fn new(edge_count: usize) -> Self {
        RunMetrics {
            per_edge_messages: vec![0; edge_count],
            per_edge_bits: vec![0; edge_count],
            ..RunMetrics::default()
        }
    }

    /// Records one sent message of `bits` bits on edge `edge_index`.
    pub fn record_send(&mut self, edge_index: usize, bits: u64) {
        self.messages_sent += 1;
        self.total_bits += bits;
        self.max_message_bits = self.max_message_bits.max(bits);
        self.per_edge_messages[edge_index] += 1;
        self.per_edge_bits[edge_index] += bits;
    }

    /// Records one delivery.
    pub fn record_delivery(&mut self) {
        self.messages_delivered += 1;
    }

    /// Records one adversary-dropped message.
    pub fn record_drop(&mut self) {
        self.messages_dropped += 1;
    }

    /// Records one adversary-injected duplicate.
    pub fn record_duplicate(&mut self) {
        self.messages_duplicated += 1;
    }

    /// Records one message lost to a crashed destination.
    pub fn record_crashed_delivery(&mut self) {
        self.crashed_deliveries += 1;
    }

    /// Total messages the adversary destroyed (drops plus crash losses) —
    /// the gap between sends + duplicates and deliveries in a quiescent run.
    pub fn messages_lost(&self) -> u64 {
        self.messages_dropped + self.crashed_deliveries
    }

    /// The paper's *required bandwidth*: the largest number of bits transmitted over
    /// any single edge during the whole run.
    pub fn max_edge_bits(&self) -> u64 {
        self.per_edge_bits.iter().copied().max().unwrap_or(0)
    }

    /// The largest number of messages transmitted over any single edge.
    pub fn max_edge_messages(&self) -> u64 {
        self.per_edge_messages.iter().copied().max().unwrap_or(0)
    }

    /// Mean message size in bits (0 when nothing was sent).
    pub fn mean_message_bits(&self) -> f64 {
        if self.messages_sent == 0 {
            0.0
        } else {
            self.total_bits as f64 / self.messages_sent as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_construction() {
        let m = RunMetrics::new(3);
        assert_eq!(m.messages_sent, 0);
        assert_eq!(m.total_bits, 0);
        assert_eq!(m.per_edge_bits.len(), 3);
        assert_eq!(m.max_edge_bits(), 0);
        assert_eq!(m.mean_message_bits(), 0.0);
    }

    #[test]
    fn send_accounting() {
        let mut m = RunMetrics::new(2);
        m.record_send(0, 10);
        m.record_send(1, 30);
        m.record_send(1, 5);
        m.record_delivery();
        assert_eq!(m.messages_sent, 3);
        assert_eq!(m.messages_delivered, 1);
        assert_eq!(m.messages_lost(), 0);
        assert_eq!(m.total_bits, 45);
        assert_eq!(m.max_message_bits, 30);
        assert_eq!(m.per_edge_bits, vec![10, 35]);
        assert_eq!(m.per_edge_messages, vec![1, 2]);
        assert_eq!(m.max_edge_bits(), 35);
        assert_eq!(m.max_edge_messages(), 2);
        assert!((m.mean_message_bits() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn fault_counters_do_not_touch_wire_accounting() {
        let mut m = RunMetrics::new(1);
        m.record_send(0, 10);
        m.record_drop();
        m.record_duplicate();
        m.record_crashed_delivery();
        m.record_crashed_delivery();
        assert_eq!(m.messages_dropped, 1);
        assert_eq!(m.messages_duplicated, 1);
        assert_eq!(m.crashed_deliveries, 2);
        assert_eq!(m.messages_lost(), 3);
        // Only the real send is charged.
        assert_eq!(m.messages_sent, 1);
        assert_eq!(m.total_bits, 10);
        assert_eq!(m.per_edge_messages, vec![1]);
    }
}
