//! Convenience runners: execute a protocol under the whole scheduler battery.

use anet_graph::Network;

use crate::engine::{run, ExecutionConfig, RunResult};
use crate::scheduler::standard_battery;
use crate::AnonymousProtocol;

/// The result of one run together with the name of the scheduler that produced it.
#[derive(Debug, Clone)]
pub struct NamedRun<S, M> {
    /// Scheduler name (`"fifo"`, `"lifo"`, `"random"`, …).
    pub scheduler: &'static str,
    /// The run result.
    pub result: RunResult<S, M>,
}

/// Runs `protocol` once under every scheduler in the standard battery
/// (FIFO, LIFO, terminal-last, terminal-first and `random_count` seeded random
/// orders) and returns all results.
///
/// Correctness statements in the paper are universally quantified over delivery
/// orders; tests use this helper to approximate that quantifier.
pub fn run_under_battery<P: AnonymousProtocol>(
    network: &Network,
    protocol: &P,
    config: ExecutionConfig,
    seed: u64,
    random_count: usize,
) -> Vec<NamedRun<P::State, P::Message>> {
    standard_battery(seed, random_count)
        .into_iter()
        .map(|mut scheduler| NamedRun {
            scheduler: scheduler.name(),
            result: run(network, protocol, scheduler.as_mut(), config),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeContext;
    use anet_graph::generators::chain_gn;

    /// Minimal protocol: forward once, terminal accepts on first receipt.
    #[derive(Debug)]
    struct Ping;

    impl AnonymousProtocol for Ping {
        type State = u64;
        type Message = ();

        fn name(&self) -> &'static str {
            "ping"
        }
        fn initial_state(&self, _ctx: &NodeContext) -> u64 {
            0
        }
        fn root_messages(&self, _root_out_degree: usize) -> Vec<(usize, ())> {
            vec![(0, ())]
        }
        fn on_receive(
            &self,
            ctx: &NodeContext,
            state: &mut u64,
            _in_port: usize,
            _message: &(),
        ) -> Vec<(usize, ())> {
            *state += 1;
            if *state == 1 {
                (0..ctx.out_degree).map(|p| (p, ())).collect()
            } else {
                Vec::new()
            }
        }
        fn should_terminate(&self, terminal_state: &u64) -> bool {
            *terminal_state >= 1
        }
    }

    #[test]
    fn battery_runs_every_scheduler() {
        let net = chain_gn(4).unwrap();
        let runs = run_under_battery(&net, &Ping, ExecutionConfig::default(), 7, 3);
        assert_eq!(runs.len(), 7);
        for named in &runs {
            assert!(
                named.result.outcome.terminated(),
                "scheduler {}",
                named.scheduler
            );
        }
        // The adversarial orders genuinely differ: under terminal-last the terminal
        // accepts late, under terminal-first it accepts after a single delivery of a
        // terminal-bound message.
        let first = runs
            .iter()
            .find(|r| r.scheduler == "terminal-first")
            .unwrap();
        let last = runs
            .iter()
            .find(|r| r.scheduler == "terminal-last")
            .unwrap();
        assert!(first.result.deliveries_at_termination <= last.result.deliveries_at_termination);
    }
}
