//! Convenience runners: execute a protocol under the whole scheduler battery,
//! sequentially or fanned out over a battery × topology grid.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use anet_graph::Network;

use crate::engine::{run, run_with_config, ExecutionConfig, RunConfig, RunResult};
use crate::scheduler::standard_battery;
use crate::AnonymousProtocol;

/// The result of one run together with the name of the scheduler that produced it.
#[derive(Debug, Clone)]
pub struct NamedRun<S, M> {
    /// Scheduler name (`"fifo"`, `"lifo"`, `"random"`, …).
    pub scheduler: &'static str,
    /// The run result.
    pub result: RunResult<S, M>,
}

/// Runs `protocol` once under every scheduler in the standard battery
/// (FIFO, LIFO, terminal-last, terminal-first and `random_count` seeded random
/// orders) and returns all results.
///
/// Correctness statements in the paper are universally quantified over delivery
/// orders; tests use this helper to approximate that quantifier.
pub fn run_under_battery<P: AnonymousProtocol>(
    network: &Network,
    protocol: &P,
    config: ExecutionConfig,
    seed: u64,
    random_count: usize,
) -> Vec<NamedRun<P::State, P::Message>> {
    standard_battery(seed, random_count)
        .into_iter()
        .map(|mut scheduler| NamedRun {
            scheduler: scheduler.name(),
            result: run(network, protocol, scheduler.as_mut(), config),
        })
        .collect()
}

/// Number of schedulers in [`standard_battery`] for a given `random_count`: the
/// deterministic policies plus the seeded random orders.
///
/// Shard-aware planners use this (with
/// [`crate::scheduler::battery_scheduler_name`]) to enumerate and label battery
/// positions without constructing scheduler values.
pub fn battery_size(random_count: usize) -> usize {
    crate::scheduler::DETERMINISTIC_BATTERY_NAMES.len() + random_count
}

/// One planned cell of a battery × topology grid: indices into the topology
/// list and the standard battery.
///
/// [`plan_battery_grid`] enumerates cells in exactly the order
/// [`run_battery_grid`] emits results, so external executors (e.g. a
/// process-sharded sweep) can partition the grid, run each cell independently
/// via [`run_battery_cell`], and merge outputs back into the single-process
/// ordering by sorting on the plan position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridCell {
    /// Index into the topology list.
    pub topology: usize,
    /// Position within the standard battery (`0..battery_size(random_count)`).
    pub battery: usize,
}

/// Enumerates the (topology, battery position) cells of a battery × topology
/// grid in the canonical row-major order: all battery positions of topology 0,
/// then topology 1, and so on — the order [`run_battery_grid`] returns results.
pub fn plan_battery_grid(topology_count: usize, random_count: usize) -> Vec<GridCell> {
    let battery = battery_size(random_count);
    (0..topology_count)
        .flat_map(|topology| (0..battery).map(move |battery| GridCell { topology, battery }))
        .collect()
}

/// Runs exactly one cell of a battery grid: `protocol` on `network` under
/// scheduler `battery_index` of `standard_battery(seed, random_count)`.
///
/// Each call builds the battery fresh and uses one scheduler from it, which is
/// identical to the per-cell semantics of [`run_under_battery`] (schedulers are
/// freshly constructed per battery there too, and each is used for exactly one
/// run). This is the primitive a sharded executor needs: a cell can run in any
/// process at any time and still produce bit-identical results.
///
/// # Panics
///
/// Panics if `battery_index >= battery_size(random_count)`.
pub fn run_battery_cell<P: AnonymousProtocol>(
    network: &Network,
    protocol: &P,
    config: RunConfig,
    seed: u64,
    random_count: usize,
    battery_index: usize,
) -> NamedRun<P::State, P::Message> {
    let mut battery = standard_battery(seed, random_count);
    assert!(
        battery_index < battery.len(),
        "battery index {battery_index} out of range for battery of {}",
        battery.len()
    );
    let scheduler = &mut battery[battery_index];
    NamedRun {
        scheduler: scheduler.name(),
        result: run_with_config(network, protocol, scheduler.as_mut(), config),
    }
}

/// One cell of a battery × topology grid: a [`NamedRun`] tagged with the name of
/// the topology it ran on.
#[derive(Debug, Clone)]
pub struct GridRun<S, M> {
    /// Name of the topology (first element of the corresponding input pair).
    pub topology: String,
    /// The scheduler-tagged run result.
    pub run: NamedRun<S, M>,
}

/// Runs the standard scheduler battery on every topology of `topologies`,
/// fanning the topologies out over `workers` [`std::thread::scope`] workers.
///
/// Each worker claims topologies from a shared counter; for every claimed
/// topology it builds a **fresh** protocol value via `make_protocol` and runs
/// the full battery on it (same semantics as calling [`run_under_battery`] per
/// topology, including the battery's fresh per-topology scheduler state and
/// seeds). Because every (topology, scheduler) cell is produced by a
/// deterministic run that shares no mutable state with other cells, the result
/// is **independent of thread timing**: the returned vector is ordered by
/// (topology index, battery position), exactly as the equivalent sequential
/// loop would produce it.
///
/// The protocol factory runs once per topology (not once per scheduler) so a
/// protocol carrying per-run shared structure — e.g. the mapping protocol's
/// record table — amortises it across the battery the same way
/// [`run_under_battery`] does.
///
/// # Panics
///
/// Panics if a worker thread panics (the panic is propagated by the scope).
pub fn run_battery_grid<P, F>(
    topologies: &[(String, Network)],
    make_protocol: F,
    config: ExecutionConfig,
    seed: u64,
    random_count: usize,
    workers: usize,
) -> Vec<GridRun<P::State, P::Message>>
where
    P: AnonymousProtocol,
    P::State: Send,
    P::Message: Send,
    F: Fn() -> P + Sync,
{
    type Slot<S, M> = Mutex<Vec<NamedRun<S, M>>>;
    let next = AtomicUsize::new(0);
    let slots: Vec<Slot<P::State, P::Message>> =
        topologies.iter().map(|_| Mutex::new(Vec::new())).collect();
    let workers = workers.max(1).min(topologies.len().max(1));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some((_, network)) = topologies.get(i) else {
                    break;
                };
                let protocol = make_protocol();
                let runs = run_under_battery(network, &protocol, config, seed, random_count);
                *slots[i].lock().expect("grid slot lock poisoned") = runs;
            });
        }
    });
    topologies
        .iter()
        .zip(slots)
        .flat_map(|((name, _), slot)| {
            slot.into_inner()
                .expect("grid slot lock poisoned")
                .into_iter()
                .map(|run| GridRun {
                    topology: name.clone(),
                    run,
                })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeContext;
    use anet_graph::generators::chain_gn;

    /// Minimal protocol: forward once, terminal accepts on first receipt.
    #[derive(Debug)]
    struct Ping;

    impl AnonymousProtocol for Ping {
        type State = u64;
        type Message = ();

        fn name(&self) -> &'static str {
            "ping"
        }
        fn initial_state(&self, _ctx: &NodeContext) -> u64 {
            0
        }
        fn root_messages(&self, _root_out_degree: usize) -> Vec<(usize, ())> {
            vec![(0, ())]
        }
        fn on_receive(
            &self,
            ctx: &NodeContext,
            state: &mut u64,
            _in_port: usize,
            _message: &(),
        ) -> Vec<(usize, ())> {
            *state += 1;
            if *state == 1 {
                (0..ctx.out_degree).map(|p| (p, ())).collect()
            } else {
                Vec::new()
            }
        }
        fn should_terminate(&self, terminal_state: &u64) -> bool {
            *terminal_state >= 1
        }
    }

    #[test]
    fn battery_runs_every_scheduler() {
        let net = chain_gn(4).unwrap();
        let runs = run_under_battery(&net, &Ping, ExecutionConfig::default(), 7, 3);
        assert_eq!(runs.len(), 7);
        for named in &runs {
            assert!(
                named.result.outcome.terminated(),
                "scheduler {}",
                named.scheduler
            );
        }
        // The adversarial orders genuinely differ: under terminal-last the terminal
        // accepts late, under terminal-first it accepts after a single delivery of a
        // terminal-bound message.
        let first = runs
            .iter()
            .find(|r| r.scheduler == "terminal-first")
            .unwrap();
        let last = runs
            .iter()
            .find(|r| r.scheduler == "terminal-last")
            .unwrap();
        assert!(first.result.deliveries_at_termination <= last.result.deliveries_at_termination);
    }

    #[test]
    fn battery_grid_matches_sequential_runs_in_order() {
        let topologies: Vec<(String, anet_graph::Network)> = [3usize, 5, 8]
            .iter()
            .map(|&n| (format!("chain/{n}"), chain_gn(n).unwrap()))
            .collect();
        for workers in [1usize, 3, 16] {
            let grid = run_battery_grid(
                &topologies,
                || Ping,
                ExecutionConfig::default(),
                7,
                3,
                workers,
            );
            assert_eq!(grid.len(), topologies.len() * 7);
            let mut cursor = grid.iter();
            for (name, network) in &topologies {
                let sequential =
                    run_under_battery(network, &Ping, ExecutionConfig::default(), 7, 3);
                for expected in sequential {
                    let cell = cursor.next().expect("grid is ordered by (topology, sched)");
                    assert_eq!(&cell.topology, name);
                    assert_eq!(cell.run.scheduler, expected.scheduler);
                    assert_eq!(cell.run.result.outcome, expected.result.outcome);
                    assert_eq!(cell.run.result.metrics, expected.result.metrics);
                    assert_eq!(cell.run.result.states, expected.result.states);
                }
            }
            assert!(cursor.next().is_none());
        }
    }

    #[test]
    fn plan_enumerates_cells_in_grid_order() {
        assert_eq!(battery_size(3), standard_battery(0, 3).len());
        assert_eq!(battery_size(0), standard_battery(9, 0).len());
        let plan = plan_battery_grid(2, 1);
        let expected: Vec<GridCell> = [(0, 0), (0, 1), (0, 2), (0, 3), (0, 4)]
            .iter()
            .chain([(1, 0), (1, 1), (1, 2), (1, 3), (1, 4)].iter())
            .map(|&(topology, battery)| GridCell { topology, battery })
            .collect();
        assert_eq!(plan, expected);
        assert!(plan_battery_grid(0, 5).is_empty());
    }

    #[test]
    fn cell_runs_match_the_battery_cell_for_cell() {
        let net = chain_gn(5).unwrap();
        let battery = run_under_battery(&net, &Ping, ExecutionConfig::default(), 11, 2);
        for (k, expected) in battery.iter().enumerate() {
            let cell = run_battery_cell(
                &net,
                &Ping,
                RunConfig::from(ExecutionConfig::default()),
                11,
                2,
                k,
            );
            assert_eq!(cell.scheduler, expected.scheduler);
            assert_eq!(cell.result.outcome, expected.result.outcome);
            assert_eq!(cell.result.metrics, expected.result.metrics);
            assert_eq!(cell.result.states, expected.result.states);
            assert_eq!(
                cell.result.deliveries_at_termination,
                expected.result.deliveries_at_termination
            );
        }
    }

    #[test]
    #[should_panic(expected = "battery index")]
    fn cell_with_out_of_range_battery_index_panics() {
        let net = chain_gn(3).unwrap();
        let _ = run_battery_cell(
            &net,
            &Ping,
            RunConfig::from(ExecutionConfig::default()),
            0,
            1,
            5,
        );
    }

    #[test]
    fn battery_grid_handles_empty_topology_list() {
        let grid = run_battery_grid(&[], || Ping, ExecutionConfig::default(), 1, 2, 4);
        assert!(grid.is_empty());
    }
}
