//! # anet-sim — asynchronous anonymous-protocol execution engine
//!
//! Section 2 of *Langberg, Schwartz, Bruck (PODC 2007)* defines an anonymous
//! protocol by a state space `Π`, a message space `Σ`, an initial state `π₀`, an
//! initial message `σ₀`, a state function `f`, a message function `g`, and a
//! stopping predicate `S` evaluated at the terminal. The network is asynchronous:
//! messages are delivered one at a time in an arbitrary order.
//!
//! This crate realises that model:
//!
//! * [`AnonymousProtocol`] — the `(Π, Σ, π₀, σ₀, f, g, S)` tuple as a trait. The
//!   per-vertex information available to the protocol is **only** the vertex's
//!   in/out degree and the port a message arrived on, enforcing anonymity.
//! * [`engine::run`] — the asynchronous executor: a pool of in-flight messages is
//!   drained in an order chosen by a pluggable [`scheduler::Scheduler`]
//!   (FIFO, LIFO, seeded-random, and adversarial terminal-starving orders), so a
//!   single protocol run can be replayed under many different asynchronous
//!   interleavings.
//! * [`metrics::RunMetrics`] — communication-complexity accounting: total bits,
//!   per-edge bits (bandwidth), message counts and maximum message size, measured
//!   through the [`Wire`] size of every transmitted message.
//! * [`trace::Trace`] — an optional full record of every delivery, used by the
//!   lower-bound experiments to extract transmitted alphabets and cut snapshots.
//!
//! The simulator is deterministic given a scheduler, which is what makes the
//! adversarial-schedule regression tests reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod metrics;
mod protocol;
pub mod runner;
pub mod scheduler;
pub mod synchronous;
pub mod trace;
mod wire;

pub use engine::{ExecutionConfig, Outcome, RunResult};
pub use protocol::{AnonymousProtocol, NodeContext};
pub use synchronous::{run_synchronous, SynchronousRun};
pub use wire::Wire;
