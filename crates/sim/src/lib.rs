//! # anet-sim — asynchronous anonymous-protocol execution engine
//!
//! Section 2 of *Langberg, Schwartz, Bruck (PODC 2007)* defines an anonymous
//! protocol by a state space `Π`, a message space `Σ`, an initial state `π₀`, an
//! initial message `σ₀`, a state function `f`, a message function `g`, and a
//! stopping predicate `S` evaluated at the terminal. The network is asynchronous:
//! messages are delivered one at a time in an arbitrary order.
//!
//! This crate realises that model:
//!
//! * [`AnonymousProtocol`] — the `(Π, Σ, π₀, σ₀, f, g, S)` tuple as a trait. The
//!   per-vertex information available to the protocol is **only** the vertex's
//!   in/out degree and the port a message arrived on, enforcing anonymity.
//! * [`engine::run`] — the asynchronous executor, built around an incrementally
//!   maintained **active-edge set** (see below).
//! * [`scheduler`] — pluggable delivery orders (FIFO, LIFO, seeded-random, and
//!   adversarial terminal-starving/rushing orders, plus exact replay), so a
//!   single protocol run can be replayed under many asynchronous interleavings.
//! * [`faults`] — a composable fault-injection layer: [`FaultyScheduler`]
//!   wraps any scheduler and answers the engine's
//!   [`scheduler::Scheduler::deliver_action`] hook with deterministic drops,
//!   duplicates, bounded reorders and crash windows from a [`FaultPlan`];
//!   [`run_corrupted`] additionally perturbs protocol state before delivery
//!   begins for corrupted-start recovery experiments.
//! * [`reference::run_full_scan`] — the naive specification engine, kept so the
//!   incremental core is cross-checkable and benchmarkable against it; and
//!   [`reference::run_queue_forest`] — the pre-flat incremental engine
//!   (per-edge `VecDeque`s), kept so the flat memory layout is likewise
//!   pinned bit-identical and its speedup measurable.
//! * [`arena::MessageArena`] — the pooled message slab behind the flat
//!   engine's queues; its module docs state the **memory layout contract**
//!   (slab invariants, slot recycling, aliasing rules).
//! * [`metrics::RunMetrics`] — communication-complexity accounting: total bits,
//!   per-edge bits (bandwidth), message counts and maximum message size, measured
//!   through the [`Wire`] size of every transmitted message.
//! * [`trace::Trace`] — an optional full record of every delivery, used by the
//!   lower-bound experiments to extract transmitted alphabets and cut snapshots.
//!
//! # The active-edge-set architecture
//!
//! The engine keeps one FIFO queue per edge, as the model requires. An edge is
//! **active** while its queue is non-empty; the set of active edges is exactly
//! the set of candidate deliveries. Rather than rebuilding that set by scanning
//! all E edges on every delivery (which makes a run O(E · deliveries)), the
//! engine maintains it incrementally and streams the changes to the scheduler:
//!
//! * a send onto an empty queue activates the edge —
//!   [`scheduler::Scheduler::on_head`] announces its head message;
//! * a delivery that leaves the queue non-empty advances the head — `on_head`
//!   again, with the next message's sequence number;
//! * a delivery that drains the queue deactivates the edge —
//!   [`scheduler::Scheduler::on_idle`].
//!
//! The scheduler answers [`scheduler::Scheduler::next_edge`] from its own
//! incrementally maintained structures: an ordered heap of active-edge heads for
//! the deterministic policies (FIFO/LIFO are a single seq-ordered heap,
//! terminal-first/last are two-class heaps), and a Fenwick-indexed active set
//! with order-statistics sampling for the random policy. Every operation is O(1)
//! or O(log E) per delivery, so the per-delivery cost no longer grows with the
//! size of the graph.
//!
//! Each scheduler also carries its naive full-scan specification
//! ([`scheduler::Scheduler::pick_full_scan`]); [`reference::run_full_scan`]
//! executes runs entirely through it, and the `engine_equivalence` property
//! tests assert the two engines produce bit-identical traces, metrics and
//! outcomes across the whole battery × topology × seed grid.
//!
//! The simulator is deterministic given a scheduler, which is what makes the
//! adversarial-schedule regression tests reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod engine;
pub mod faults;
pub mod metrics;
mod protocol;
pub mod reference;
pub mod runner;
pub mod scheduler;
pub mod synchronous;
pub mod trace;
mod wire;

pub use arena::MessageArena;
pub use engine::{
    run_corrupted, run_recovering, ExecutionConfig, Outcome, RecoveredRun, RunConfig, RunResult,
};
pub use faults::{CrashWindow, FaultPlan, FaultyScheduler};
pub use protocol::{AnonymousProtocol, NodeContext, RefloodProtocol};
pub use reference::{
    run_full_scan, run_queue_forest, run_queue_forest_corrupted, run_queue_forest_recovering,
};
pub use synchronous::{run_synchronous, SynchronousRun};
pub use wire::{SharedSlice, Wire};
