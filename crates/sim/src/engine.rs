//! The asynchronous execution engine: incremental active-edge scheduling over
//! a flat, cache-dense core.
//!
//! Two generations of optimization meet in this loop:
//!
//! * **Incremental scheduling.** Earlier versions rebuilt the full list of
//!   pending edges on every delivery — an O(E) scan in the innermost loop,
//!   making a run cost O(E · deliveries). The loop below never scans: it
//!   tracks the number of in-flight messages, notifies the [`Scheduler`]
//!   whenever an edge's head message changes ([`Scheduler::on_head`]) or an
//!   edge drains ([`Scheduler::on_idle`]), and asks the scheduler for the next
//!   edge directly ([`Scheduler::next_edge`]). Every scheduler in
//!   [`crate::scheduler`] answers in O(1) or O(log E), so a delivery costs
//!   O(log E) regardless of graph size.
//! * **Flat memory layout.** All hot per-run state lives in contiguous
//!   arrays indexed by dense node/edge ids: adjacency is an
//!   [`anet_graph::Csr`] built once per run (no pointer-chasing through
//!   `DiGraph`'s per-node `Vec`s), queued messages live in one pooled
//!   [`crate::arena::MessageArena`] slab instead of a `VecDeque` per edge,
//!   protocol emissions go through the reusable
//!   [`AnonymousProtocol::on_receive_into`] scratch buffer instead of a fresh
//!   `Vec` per delivery, and every side buffer (states, contexts, trace,
//!   delivery order, step log) is pre-sized from the graph's node/edge
//!   counts. See the [`crate::arena`] docs for the full **memory layout
//!   contract**.
//!
//! Both predecessors are retained as executable specifications in
//! [`crate::reference`]: [`crate::reference::run_full_scan`] pins the
//! scheduling semantics (via [`Scheduler::pick_full_scan`]) and
//! [`crate::reference::run_queue_forest`] pins the memory-layout rewrite —
//! the differential suites assert both produce bit-identical traces, metrics,
//! outcomes, delivery orders and step logs for every scheduler in the
//! standard battery.

use anet_graph::{Csr, EdgeId, Network, NodeId};

use crate::arena::MessageArena;
use crate::metrics::RunMetrics;
use crate::protocol::RefloodProtocol;
use crate::scheduler::{Scheduler, SchedulerAction};
use crate::trace::{SendEvent, Trace};
use crate::{AnonymousProtocol, NodeContext, Wire};

/// Execution limits and instrumentation switches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutionConfig {
    /// Maximum number of message deliveries before the run is aborted. The paper's
    /// protocols always quiesce on their own; the budget is a guard against buggy
    /// protocols that would otherwise loop forever.
    pub max_deliveries: u64,
    /// Whether to record a full [`Trace`] of every send (needed by the lower-bound
    /// experiments, skipped by the benchmarks for speed).
    pub record_trace: bool,
}

impl Default for ExecutionConfig {
    fn default() -> Self {
        ExecutionConfig {
            max_deliveries: 10_000_000,
            record_trace: false,
        }
    }
}

impl ExecutionConfig {
    /// Default limits with trace recording switched on.
    pub fn with_trace() -> Self {
        ExecutionConfig {
            record_trace: true,
            ..ExecutionConfig::default()
        }
    }
}

/// Full run configuration: the execution limits plus instrumentation that only
/// the incremental engine honours.
///
/// [`run`] takes the plain [`ExecutionConfig`] for compatibility;
/// [`run_with_config`] accepts this wrapper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunConfig {
    /// Execution limits and trace switch.
    pub execution: ExecutionConfig,
    /// Whether to record the exact edge *delivery* order into
    /// [`RunResult::delivery_order`], plus the full per-step
    /// [`RunResult::step_log`]. Traces record sends; the delivery order is
    /// the asynchronous adversary's actual interleaving, and feeding it to a
    /// [`crate::scheduler::ReplayScheduler`] reproduces the run
    /// bit-identically. Under a faulty scheduler the delivery order alone
    /// omits drops and crash losses; replaying the step log
    /// ([`crate::scheduler::ReplayScheduler::with_steps`]) reproduces even a
    /// faulty run exactly.
    pub record_delivery_order: bool,
}

impl RunConfig {
    /// Wraps an [`ExecutionConfig`] with delivery-order capture switched on.
    pub fn with_delivery_order(execution: ExecutionConfig) -> Self {
        RunConfig {
            execution,
            record_delivery_order: true,
        }
    }
}

impl From<ExecutionConfig> for RunConfig {
    fn from(execution: ExecutionConfig) -> Self {
        RunConfig {
            execution,
            record_delivery_order: false,
        }
    }
}

/// How a run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The terminal's stopping predicate `S` became true: the protocol terminated.
    Terminated,
    /// All in-flight messages were delivered without the terminal ever accepting.
    /// For a correct protocol this is the expected outcome exactly when some vertex
    /// reachable from the root is not connected to the terminal.
    Quiescent,
    /// The delivery budget was exhausted (only possible for misbehaving protocols).
    BudgetExhausted,
}

impl Outcome {
    /// Returns `true` for [`Outcome::Terminated`].
    pub fn terminated(self) -> bool {
        self == Outcome::Terminated
    }
}

/// The result of one protocol run.
#[derive(Debug, Clone)]
pub struct RunResult<S, M> {
    /// How the run ended.
    pub outcome: Outcome,
    /// Final state of every vertex, indexed by node id.
    pub states: Vec<S>,
    /// Communication metrics.
    pub metrics: RunMetrics,
    /// Number of deliveries performed when the terminal first accepted (if it did).
    pub deliveries_at_termination: Option<u64>,
    /// Full send trace, when requested via [`ExecutionConfig::record_trace`].
    pub trace: Option<Trace<M>>,
    /// The exact edge delivery order, when requested via
    /// [`RunConfig::record_delivery_order`] (captured by the incremental engine
    /// only; the reference and synchronous engines leave it `None`).
    ///
    /// This records *effective* deliveries only: a step whose message was
    /// dropped or lost to a crash does not appear here (its edge delivered
    /// nothing), so the order's length always equals
    /// [`RunMetrics::messages_delivered`] even under a faulty scheduler.
    pub delivery_order: Option<Vec<EdgeId>>,
    /// Every engine step as `(edge, action)`, when requested via
    /// [`RunConfig::record_delivery_order`] (incremental engine only).
    ///
    /// Unlike [`RunResult::delivery_order`] this includes non-delivering
    /// steps (drops, crash losses), so feeding it to
    /// [`crate::scheduler::ReplayScheduler::with_steps`] reproduces a faulty
    /// run bit-identically. For a reliable run every action is
    /// [`SchedulerAction::Deliver`] and the edge sequence equals the delivery
    /// order.
    pub step_log: Option<Vec<(EdgeId, SchedulerAction)>>,
}

impl<S, M> RunResult<S, M> {
    /// The terminal's final state.
    pub fn terminal_state<'a>(&'a self, network: &Network) -> &'a S {
        &self.states[network.terminal().index()]
    }
}

/// Runs `protocol` on `network` under the delivery order chosen by `scheduler`.
///
/// The run proceeds exactly as in the paper's model: the root's initial messages
/// are placed on its out-edges, then one in-flight message at a time is delivered
/// to its destination, which updates its state (`f`) and emits messages on its
/// out-ports (`g`); the run stops as soon as the terminal's stopping predicate `S`
/// holds, or when no messages remain in flight, or when the delivery budget is
/// exhausted.
///
/// The scheduler is kept in sync incrementally (see the [module docs](self)):
/// each delivery performs O(1) queue work plus O(1)–O(log E) scheduler work, and
/// never scans the edge set.
///
/// # Panics
///
/// Panics if the protocol emits a message on an out-port that does not exist at
/// the emitting vertex, or if the scheduler returns an edge with no queued
/// message — both are bugs in the protocol or scheduler, not run-time conditions.
pub fn run<P, Sch>(
    network: &Network,
    protocol: &P,
    scheduler: &mut Sch,
    config: ExecutionConfig,
) -> RunResult<P::State, P::Message>
where
    P: AnonymousProtocol,
    Sch: Scheduler + ?Sized,
{
    run_with_config(network, protocol, scheduler, RunConfig::from(config))
}

/// [`run`] with the full [`RunConfig`], enabling delivery-order capture.
///
/// # Panics
///
/// Panics under the same conditions as [`run`].
pub fn run_with_config<P, Sch>(
    network: &Network,
    protocol: &P,
    scheduler: &mut Sch,
    run_config: RunConfig,
) -> RunResult<P::State, P::Message>
where
    P: AnonymousProtocol,
    Sch: Scheduler + ?Sized,
{
    run_corrupted(network, protocol, scheduler, run_config, |_| {})
}

/// [`run_with_config`] with a state-corruption hook: `corrupt` is applied to
/// the freshly initialised per-vertex states **before** the root's initial
/// messages and before the initial terminal-acceptance check — the
/// self-stabilisation entry point ("does the protocol recover when started
/// from perturbed state, and at what wire-bit cost?").
///
/// The hook receives the state slice indexed by node id. Passing a no-op
/// closure makes this identical to [`run_with_config`].
///
/// # Panics
///
/// Panics under the same conditions as [`run`].
pub fn run_corrupted<P, Sch, F>(
    network: &Network,
    protocol: &P,
    scheduler: &mut Sch,
    run_config: RunConfig,
    corrupt: F,
) -> RunResult<P::State, P::Message>
where
    P: AnonymousProtocol,
    Sch: Scheduler + ?Sized,
    F: FnOnce(&mut [P::State]),
{
    run_engine(
        network,
        protocol,
        scheduler,
        run_config,
        corrupt,
        0,
        |_, _| Vec::new(),
    )
    .0
}

/// The result of a [`run_recovering`] execution: the run itself plus the
/// re-flood accounting that quantifies what recovery cost on top of it.
#[derive(Debug, Clone)]
pub struct RecoveredRun<S, M> {
    /// The underlying run (outcome, states, metrics, optional trace/order).
    pub result: RunResult<S, M>,
    /// Number of re-flood rounds that actually fired (0 for a run that never
    /// drained with losses — in particular, always 0 under a reliable
    /// scheduler).
    pub reflood_rounds: u32,
    /// Messages injected by re-flood rounds. These are also counted in
    /// [`RunMetrics::messages_sent`]; this field isolates the retry traffic.
    pub reflood_sends: u64,
    /// Wire bits charged for re-flood sends (likewise included in
    /// [`RunMetrics::total_bits`]).
    pub reflood_bits: u64,
}

impl<S, M> RecoveredRun<S, M> {
    /// Whether any re-flood round fired, i.e. the run needed retries at all.
    pub fn retried(&self) -> bool {
        self.reflood_rounds > 0
    }
}

/// Runs a [`RefloodProtocol`] with a bounded retry: whenever the network
/// drains (`in_flight == 0`) without the terminal accepting **and** at least
/// one message was destroyed (dropped or lost to a crash,
/// [`RunMetrics::messages_lost`]), one *re-flood round* is injected — the
/// root re-transmits `σ₀` and then every vertex, in node-id order, re-sends
/// its frontier ([`RefloodProtocol::reflood`]) — and the run continues under
/// the same scheduler.
///
/// The contract, pinned by the recovery differential suite in `anet-core`:
///
/// * **"Recovered" means the ordinary success predicate, reached late.** A
///   recovered run is one that terminates (and satisfies the protocol's
///   `*_recovered()` check) even though the adversary destroyed messages; the
///   re-flood mechanism adds no new notion of success.
/// * **Retry budget.** At most `retry_budget` re-flood rounds fire. Under
///   total loss the run still drains after the last round, so starvation
///   stays detectable — it is reported as [`Outcome::Quiescent`] with
///   messages lost, exactly like a starved pristine run, never as a hang.
///   A re-flood round that injects nothing (every frontier empty) ends the
///   run immediately.
/// * **Reliable ⇒ bit-identical to pristine.** Re-flooding triggers only
///   when `messages_lost() > 0`, so under a reliable scheduler (or a
///   [`crate::faults::FaultPlan`] whose `is_reliable()` holds) this function
///   performs exactly the sends of [`run_with_config`] — same outcome, same
///   states, same metrics, same trace, bit for bit.
/// * **Wire bits charge every real send.** Re-flooded messages go through the
///   normal send path: full `wire_bits()` per message, trace events, per-edge
///   accounting. The paper's cost model counts transmissions on channels, and
///   a retry is a real transmission — that is precisely the recovery overhead
///   this layer exists to measure (see `RecoveredRun::reflood_bits`).
///
/// # Panics
///
/// Panics under the same conditions as [`run`].
pub fn run_recovering<P, Sch>(
    network: &Network,
    protocol: &P,
    scheduler: &mut Sch,
    run_config: RunConfig,
    retry_budget: u32,
) -> RecoveredRun<P::State, P::Message>
where
    P: RefloodProtocol,
    Sch: Scheduler + ?Sized,
{
    let (result, reflood_rounds, reflood_sends, reflood_bits) = run_engine(
        network,
        protocol,
        scheduler,
        run_config,
        |_| {},
        retry_budget,
        |ctx, state| protocol.reflood(ctx, state),
    );
    RecoveredRun {
        result,
        reflood_rounds,
        reflood_sends,
        reflood_bits,
    }
}

/// The single engine loop behind [`run_corrupted`] and [`run_recovering`]:
/// corruption hook, optional re-flood rounds, and the incremental delivery
/// machinery over the flat core (CSR adjacency + pooled message arena + one
/// reusable emit buffer). Returns the run plus `(rounds, sends, bits)`
/// re-flood accounting (all zero when `retry_budget` is 0).
fn run_engine<P, Sch, F, R>(
    network: &Network,
    protocol: &P,
    scheduler: &mut Sch,
    run_config: RunConfig,
    corrupt: F,
    retry_budget: u32,
    mut reflood: R,
) -> (RunResult<P::State, P::Message>, u32, u64, u64)
where
    P: AnonymousProtocol,
    Sch: Scheduler + ?Sized,
    F: FnOnce(&mut [P::State]),
    R: FnMut(&NodeContext, &P::State) -> Vec<(usize, P::Message)>,
{
    let config = run_config.execution;
    // Flatten the topology once: all adjacency below is contiguous-array
    // indexing, never a hop through `DiGraph`'s per-node heap `Vec`s.
    let csr = Csr::from_graph(network.graph());
    let node_count = csr.node_count();
    let edge_count = csr.edge_count();
    let root = network.root().index() as u32;
    let terminal = network.terminal().index() as u32;

    // Side buffers are pre-sized from the graph counts: a reliable
    // single-flood run performs about one delivery per edge, so one slot per
    // edge covers it without a regrow (and a regrow is all a longer run pays).
    let mut delivery_order = if run_config.record_delivery_order {
        Some(Vec::with_capacity(edge_count))
    } else {
        None
    };
    let mut step_log = if run_config.record_delivery_order {
        Some(Vec::with_capacity(edge_count))
    } else {
        None
    };
    let mut contexts: Vec<NodeContext> = Vec::with_capacity(node_count);
    for v in 0..node_count {
        contexts.push(NodeContext::new(
            csr.in_degree(v as u32),
            csr.out_degree(v as u32),
        ));
    }
    let mut states: Vec<P::State> = Vec::with_capacity(node_count);
    for ctx in &contexts {
        states.push(protocol.initial_state(ctx));
    }
    corrupt(&mut states);

    // The pooled message slab replaces the per-edge queue forest (see
    // [`crate::arena`] for the memory layout contract). Messages are moved,
    // never cloned, on the delivery path: the only `Message::clone` the
    // engine performs is into the optional trace, so cheaply clonable
    // payloads ([`crate::SharedSlice`], the copy-on-write `IntervalUnion`
    // handles of the interval protocols) keep per-delivery and
    // per-trace-event cost independent of payload size — a payload flooded
    // across the whole run can remain one shared buffer (pinned by
    // `trace_clones_share_arc_payloads_end_to_end`). Wire-bit accounting is
    // taken from `wire_bits()` at send time, so sharing never changes what an
    // edge is charged.
    let mut arena: MessageArena<P::Message> = MessageArena::new(edge_count);
    let mut metrics = RunMetrics::new(edge_count);
    let mut trace = if config.record_trace {
        Some(Trace::with_capacity(edge_count))
    } else {
        None
    };
    let mut next_seq: u64 = 0;
    let mut in_flight: usize = 0;

    scheduler.begin_run(edge_count);

    let send = |from: u32,
                port: usize,
                message: P::Message,
                arena: &mut MessageArena<P::Message>,
                scheduler: &mut Sch,
                in_flight: &mut usize,
                metrics: &mut RunMetrics,
                trace: &mut Option<Trace<P::Message>>,
                next_seq: &mut u64| {
        let out_edges = csr.out_edges(from);
        assert!(
            port < out_edges.len(),
            "protocol {} emitted on out-port {port} of a vertex with out-degree {}",
            protocol.name(),
            out_edges.len()
        );
        let edge = out_edges[port] as usize;
        let bits = message.wire_bits();
        metrics.record_send(edge, bits);
        if let Some(t) = trace.as_mut() {
            t.push(SendEvent {
                seq: *next_seq,
                edge: EdgeId(edge),
                src: NodeId(from as usize),
                dst: NodeId(csr.edge_dst(edge as u32) as usize),
                bits,
                message: message.clone(),
            });
        }
        if arena.push_back(edge, *next_seq, message) {
            // The edge turns active and this message becomes its head.
            scheduler.on_head(
                EdgeId(edge),
                *next_seq,
                csr.edge_dst(edge as u32) == terminal,
            );
        }
        *in_flight += 1;
        *next_seq += 1;
    };

    // σ₀: the root transmits its initial messages.
    for (port, message) in protocol.root_messages(csr.out_degree(root)) {
        send(
            root,
            port,
            message,
            &mut arena,
            scheduler,
            &mut in_flight,
            &mut metrics,
            &mut trace,
            &mut next_seq,
        );
    }

    let mut outcome = Outcome::Quiescent;
    let mut deliveries_at_termination = None;

    // A protocol whose terminal accepts in its initial state terminates immediately.
    if protocol.should_terminate(&states[terminal as usize]) {
        outcome = Outcome::Terminated;
        deliveries_at_termination = Some(0);
        return (
            RunResult {
                outcome,
                states,
                metrics,
                deliveries_at_termination,
                trace,
                delivery_order,
                step_log,
            },
            0,
            0,
            0,
        );
    }

    let mut reflood_rounds: u32 = 0;
    let mut reflood_sends: u64 = 0;
    let mut reflood_bits: u64 = 0;
    // One reusable emission buffer for the whole run: `on_receive_into`
    // appends into it and the drain below forwards to `send`, so a delivery
    // allocates nothing once the buffer has grown to the widest emission.
    let mut emit_buf: Vec<(usize, P::Message)> = Vec::new();

    loop {
        if in_flight == 0 {
            // Drained. A re-flood round fires only if the adversary actually
            // destroyed traffic (so reliable runs stay bit-identical to the
            // pristine path) and the retry budget has rounds left (so total
            // loss still starves detectably instead of hanging).
            if reflood_rounds >= retry_budget || metrics.messages_lost() == 0 {
                break;
            }
            reflood_rounds += 1;
            let sends_before = metrics.messages_sent;
            let bits_before = metrics.total_bits;
            // The root re-transmits σ₀ …
            for (port, message) in protocol.root_messages(csr.out_degree(root)) {
                send(
                    root,
                    port,
                    message,
                    &mut arena,
                    scheduler,
                    &mut in_flight,
                    &mut metrics,
                    &mut trace,
                    &mut next_seq,
                );
            }
            // … then every vertex re-sends its frontier, in node-id order
            // (deterministic on the canonical topology). The root is included:
            // in a cyclic network it receives messages like any other vertex,
            // and its frontier is separate from σ₀.
            for node in 0..node_count {
                for (port, message) in reflood(&contexts[node], &states[node]) {
                    send(
                        node as u32,
                        port,
                        message,
                        &mut arena,
                        scheduler,
                        &mut in_flight,
                        &mut metrics,
                        &mut trace,
                        &mut next_seq,
                    );
                }
            }
            reflood_sends += metrics.messages_sent - sends_before;
            reflood_bits += metrics.total_bits - bits_before;
            if in_flight == 0 {
                // Nothing to re-send: the run is starved for good.
                break;
            }
            continue;
        }
        if metrics.messages_delivered >= config.max_deliveries {
            outcome = Outcome::BudgetExhausted;
            break;
        }
        let edge = scheduler.next_edge();
        let e = edge.index();
        let dst = csr.edge_dst(e as u32);
        let queue_len = arena.len(e);
        assert!(
            queue_len > 0,
            "scheduler {} chose edge {edge:?} which has no queued message",
            scheduler.name()
        );
        let action = scheduler.deliver_action(edge, NodeId(dst as usize), queue_len);
        if let Some(log) = step_log.as_mut() {
            log.push((edge, action));
        }
        let (_, message) = match action {
            // Deliver a mid-queue message instead of the head (clamped).
            SchedulerAction::Reorder(i) => {
                let idx = i.min(queue_len - 1);
                arena
                    .remove_at(e, idx)
                    .expect("index clamped below queue length")
            }
            _ => arena.pop_front(e).expect("emptiness asserted above"),
        };
        in_flight -= 1;
        if action == SchedulerAction::Duplicate {
            // The copy is an adversary artifact, not a protocol send: it gets
            // a fresh sequence number (head heaps rely on uniqueness) but no
            // trace event and no wire bits.
            arena.push_back(e, next_seq, message.clone());
            next_seq += 1;
            in_flight += 1;
            metrics.record_duplicate();
        }
        // Report the edge's new state before the protocol reacts, so a
        // re-activating send during `on_receive_into` observes a consistent
        // queue.
        match arena.head_seq(e) {
            Some(seq) => scheduler.on_head(edge, seq, dst == terminal),
            None => scheduler.on_idle(edge),
        }
        match action {
            SchedulerAction::Drop => {
                metrics.record_drop();
                continue;
            }
            SchedulerAction::NodeDown => {
                metrics.record_crashed_delivery();
                continue;
            }
            SchedulerAction::Deliver | SchedulerAction::Duplicate | SchedulerAction::Reorder(_) => {
            }
        }
        if let Some(order) = delivery_order.as_mut() {
            order.push(edge);
        }
        let in_port = csr.in_port(e as u32);
        metrics.record_delivery();

        emit_buf.clear();
        protocol.on_receive_into(
            &contexts[dst as usize],
            &mut states[dst as usize],
            in_port,
            &message,
            &mut emit_buf,
        );
        for (port, out_message) in emit_buf.drain(..) {
            send(
                dst,
                port,
                out_message,
                &mut arena,
                scheduler,
                &mut in_flight,
                &mut metrics,
                &mut trace,
                &mut next_seq,
            );
        }

        if dst == terminal && protocol.should_terminate(&states[terminal as usize]) {
            outcome = Outcome::Terminated;
            deliveries_at_termination = Some(metrics.messages_delivered);
            break;
        }
    }

    (
        RunResult {
            outcome,
            states,
            metrics,
            deliveries_at_termination,
            trace,
            delivery_order,
            step_log,
        },
        reflood_rounds,
        reflood_sends,
        reflood_bits,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{FifoScheduler, RandomScheduler, ReplayScheduler};
    use anet_graph::generators::{chain_gn, path_network};

    /// A toy protocol: forwards a unit token on every out-port the first time it is
    /// hit; the terminal accepts after receiving `needed` tokens.
    #[derive(Debug, Clone)]
    struct Flood {
        needed: u64,
    }

    #[derive(Debug, Clone)]
    struct FloodState {
        received: u64,
        forwarded: bool,
    }

    impl AnonymousProtocol for Flood {
        type State = FloodState;
        type Message = ();

        fn name(&self) -> &'static str {
            "flood"
        }

        fn initial_state(&self, _ctx: &NodeContext) -> FloodState {
            FloodState {
                received: 0,
                forwarded: false,
            }
        }

        fn root_messages(&self, root_out_degree: usize) -> Vec<(usize, ())> {
            (0..root_out_degree).map(|p| (p, ())).collect()
        }

        fn on_receive(
            &self,
            ctx: &NodeContext,
            state: &mut FloodState,
            _in_port: usize,
            _message: &(),
        ) -> Vec<(usize, ())> {
            state.received += 1;
            if state.forwarded {
                return Vec::new();
            }
            state.forwarded = true;
            (0..ctx.out_degree).map(|p| (p, ())).collect()
        }

        fn should_terminate(&self, terminal_state: &FloodState) -> bool {
            terminal_state.received >= self.needed
        }
    }

    #[test]
    fn flood_on_path_terminates_and_counts_messages() {
        let net = path_network(4).unwrap();
        let res = run(
            &net,
            &Flood { needed: 1 },
            &mut FifoScheduler::new(),
            ExecutionConfig::default(),
        );
        assert_eq!(res.outcome, Outcome::Terminated);
        assert_eq!(res.metrics.messages_sent, 5);
        assert_eq!(res.metrics.messages_delivered, 5);
        assert_eq!(res.deliveries_at_termination, Some(5));
        assert_eq!(res.metrics.max_edge_messages(), 1);
        assert_eq!(res.terminal_state(&net).received, 1);
    }

    #[test]
    fn flood_quiesces_when_terminal_needs_more_than_it_gets() {
        let net = path_network(3).unwrap();
        let res = run(
            &net,
            &Flood { needed: 2 },
            &mut FifoScheduler::new(),
            ExecutionConfig::default(),
        );
        assert_eq!(res.outcome, Outcome::Quiescent);
        assert_eq!(res.deliveries_at_termination, None);
    }

    #[test]
    fn chain_delivers_one_message_per_edge_under_any_schedule() {
        let net = chain_gn(6).unwrap();
        for seed in 0..5 {
            let mut sched = RandomScheduler::seeded(seed);
            let res = run(
                &net,
                &Flood { needed: 6 },
                &mut sched,
                ExecutionConfig::default(),
            );
            assert_eq!(res.outcome, Outcome::Terminated);
            assert_eq!(res.metrics.messages_sent as usize, net.edge_count());
            assert!(res.metrics.per_edge_messages.iter().all(|&c| c == 1));
        }
    }

    #[test]
    fn trace_records_every_send() {
        let net = chain_gn(3).unwrap();
        let res = run(
            &net,
            &Flood { needed: 3 },
            &mut FifoScheduler::new(),
            ExecutionConfig::with_trace(),
        );
        let trace = res.trace.expect("trace requested");
        assert_eq!(trace.len(), net.edge_count());
        // Sequence numbers are unique and increasing.
        let seqs: Vec<u64> = trace.events().iter().map(|e| e.seq).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), seqs.len());
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let net = chain_gn(8).unwrap();
        let config = ExecutionConfig {
            max_deliveries: 3,
            record_trace: false,
        };
        let res = run(
            &net,
            &Flood { needed: 8 },
            &mut FifoScheduler::new(),
            config,
        );
        assert_eq!(res.outcome, Outcome::BudgetExhausted);
        assert_eq!(res.metrics.messages_delivered, 3);
    }

    #[test]
    fn replaying_a_fifo_order_reproduces_the_run() {
        // Capture the delivery order of a FIFO run via its trace (FIFO delivers
        // in send order), then replay it and check the run is identical.
        let net = chain_gn(4).unwrap();
        let fifo = run(
            &net,
            &Flood { needed: 4 },
            &mut FifoScheduler::new(),
            ExecutionConfig::with_trace(),
        );
        let order: Vec<_> = fifo
            .trace
            .as_ref()
            .expect("trace requested")
            .events()
            .iter()
            .map(|e| e.edge)
            .collect();
        let mut replay = ReplayScheduler::new(order);
        let res = run(
            &net,
            &Flood { needed: 4 },
            &mut replay,
            ExecutionConfig::with_trace(),
        );
        assert_eq!(res.outcome, fifo.outcome);
        assert_eq!(res.metrics, fifo.metrics);
        assert_eq!(res.trace.unwrap(), fifo.trace.unwrap());
    }

    /// A message wrapping a reference-counted payload buffer, standing in for
    /// the CoW `IntervalUnion` handles of the interval protocols.
    #[derive(Debug, Clone)]
    struct SharedBlob(std::sync::Arc<Vec<u8>>);

    impl Wire for SharedBlob {
        fn wire_bits(&self) -> u64 {
            8 * self.0.len() as u64
        }
    }

    /// Forwards the received payload *handle* on every out-port.
    #[derive(Debug)]
    struct ForwardBlob;

    impl AnonymousProtocol for ForwardBlob {
        type State = bool;
        type Message = SharedBlob;

        fn name(&self) -> &'static str {
            "forward-blob"
        }
        fn initial_state(&self, _ctx: &NodeContext) -> bool {
            false
        }
        fn root_messages(&self, _root_out_degree: usize) -> Vec<(usize, SharedBlob)> {
            vec![(0, SharedBlob(std::sync::Arc::new(vec![7u8; 32])))]
        }
        fn on_receive(
            &self,
            ctx: &NodeContext,
            state: &mut bool,
            _in_port: usize,
            message: &SharedBlob,
        ) -> Vec<(usize, SharedBlob)> {
            if std::mem::replace(state, true) {
                return Vec::new();
            }
            (0..ctx.out_degree).map(|p| (p, message.clone())).collect()
        }
        fn should_terminate(&self, terminal_state: &bool) -> bool {
            *terminal_state
        }
    }

    #[test]
    fn trace_clones_share_arc_payloads_end_to_end() {
        // A payload handle forwarded along a whole path must remain ONE
        // allocation: the engine moves messages on the delivery path and its
        // only clone — into the trace — shares reference-counted buffers. With
        // n trace events alive and every queue drained, the buffer's strong
        // count is exactly n; wire accounting still charged every edge in full.
        let n = 5;
        let net = path_network(n).unwrap();
        let res = run(
            &net,
            &ForwardBlob,
            &mut FifoScheduler::new(),
            ExecutionConfig::with_trace(),
        );
        assert_eq!(res.outcome, Outcome::Terminated);
        let trace = res.trace.expect("trace requested");
        assert_eq!(trace.len(), net.edge_count());
        let first = &trace.events()[0].message.0;
        for event in trace.events() {
            assert!(
                std::sync::Arc::ptr_eq(first, &event.message.0),
                "trace event holds a detached payload copy"
            );
        }
        assert_eq!(std::sync::Arc::strong_count(first), trace.len());
        // Sharing is invisible to the paper's bit accounting.
        assert_eq!(res.metrics.total_bits, 8 * 32 * net.edge_count() as u64);
    }

    /// A deliberately broken protocol that emits on a non-existent port.
    #[derive(Debug)]
    struct BadPort;

    impl AnonymousProtocol for BadPort {
        type State = ();
        type Message = ();

        fn name(&self) -> &'static str {
            "bad-port"
        }
        fn initial_state(&self, _ctx: &NodeContext) {}
        fn root_messages(&self, _root_out_degree: usize) -> Vec<(usize, ())> {
            vec![(0, ())]
        }
        fn on_receive(
            &self,
            _ctx: &NodeContext,
            _state: &mut (),
            _in_port: usize,
            _message: &(),
        ) -> Vec<(usize, ())> {
            vec![(99, ())]
        }
        fn should_terminate(&self, _terminal_state: &()) -> bool {
            false
        }
    }

    #[test]
    #[should_panic(expected = "out-port")]
    fn emitting_on_missing_port_panics() {
        let net = path_network(2).unwrap();
        let _ = run(
            &net,
            &BadPort,
            &mut FifoScheduler::new(),
            ExecutionConfig::default(),
        );
    }

    impl RefloodProtocol for Flood {
        fn reflood(&self, ctx: &NodeContext, state: &FloodState) -> Vec<(usize, ())> {
            if state.forwarded {
                (0..ctx.out_degree).map(|p| (p, ())).collect()
            } else {
                Vec::new()
            }
        }
    }

    /// A fault adapter for the recovery tests: drops the first `remaining`
    /// engine steps, then delivers reliably.
    struct DropFirst<S> {
        inner: S,
        remaining: u64,
    }

    impl<S: Scheduler> Scheduler for DropFirst<S> {
        fn name(&self) -> &'static str {
            "drop-first"
        }
        fn begin_run(&mut self, edge_count: usize) {
            self.inner.begin_run(edge_count);
        }
        fn on_head(&mut self, edge: EdgeId, head_seq: u64, into_terminal: bool) {
            self.inner.on_head(edge, head_seq, into_terminal);
        }
        fn on_idle(&mut self, edge: EdgeId) {
            self.inner.on_idle(edge);
        }
        fn next_edge(&mut self) -> EdgeId {
            self.inner.next_edge()
        }
        fn pick_full_scan(&mut self, candidates: &[crate::scheduler::PendingEdge]) -> usize {
            self.inner.pick_full_scan(candidates)
        }
        fn deliver_action(
            &mut self,
            _edge: EdgeId,
            _dst: anet_graph::NodeId,
            _queue_len: usize,
        ) -> SchedulerAction {
            if self.remaining > 0 {
                self.remaining -= 1;
                SchedulerAction::Drop
            } else {
                SchedulerAction::Deliver
            }
        }
    }

    #[test]
    fn recovering_under_a_reliable_scheduler_is_bit_identical_to_pristine() {
        let net = chain_gn(5).unwrap();
        let pristine = run(
            &net,
            &Flood { needed: 5 },
            &mut FifoScheduler::new(),
            ExecutionConfig::with_trace(),
        );
        let recovered = run_recovering(
            &net,
            &Flood { needed: 5 },
            &mut FifoScheduler::new(),
            RunConfig::from(ExecutionConfig::with_trace()),
            7,
        );
        assert_eq!(recovered.reflood_rounds, 0);
        assert_eq!(recovered.reflood_sends, 0);
        assert_eq!(recovered.reflood_bits, 0);
        assert!(!recovered.retried());
        assert_eq!(recovered.result.outcome, pristine.outcome);
        assert_eq!(recovered.result.metrics, pristine.metrics);
        assert_eq!(recovered.result.trace.unwrap(), pristine.trace.unwrap());
    }

    #[test]
    fn recovering_recovers_where_the_pristine_run_starves() {
        let net = path_network(4).unwrap();
        // One drop kills the pristine flood for good …
        let starved = run(
            &net,
            &Flood { needed: 1 },
            &mut DropFirst {
                inner: FifoScheduler::new(),
                remaining: 1,
            },
            ExecutionConfig::default(),
        );
        assert_eq!(starved.outcome, Outcome::Quiescent);
        assert!(starved.metrics.messages_lost() > 0);
        assert_eq!(starved.metrics.messages_delivered, 0);
        // … but one re-flood round resurrects it.
        let recovered = run_recovering(
            &net,
            &Flood { needed: 1 },
            &mut DropFirst {
                inner: FifoScheduler::new(),
                remaining: 1,
            },
            RunConfig::default(),
            2,
        );
        assert_eq!(recovered.result.outcome, Outcome::Terminated);
        assert_eq!(recovered.reflood_rounds, 1);
        assert!(recovered.reflood_sends >= 1);
        assert_eq!(recovered.result.metrics.messages_dropped, 1);
    }

    #[test]
    fn retry_budget_bounds_the_rounds_and_total_loss_still_starves() {
        let net = path_network(3).unwrap();
        let recovered = run_recovering(
            &net,
            &Flood { needed: 1 },
            &mut DropFirst {
                inner: FifoScheduler::new(),
                remaining: u64::MAX,
            },
            RunConfig::default(),
            3,
        );
        assert_eq!(recovered.result.outcome, Outcome::Quiescent);
        assert_eq!(recovered.reflood_rounds, 3);
        assert_eq!(recovered.result.metrics.messages_delivered, 0);
        assert_eq!(
            recovered.result.metrics.messages_lost(),
            recovered.result.metrics.messages_sent
        );
        // Each round re-injected exactly σ₀ (no vertex ever forwarded).
        assert_eq!(recovered.reflood_sends, 3);
    }
}
