//! Synchronous (round-based) execution.
//!
//! Section 2 of the paper notes that the results "can be easily extended … to the
//! case that the communication throughout the network is synchronous". This module
//! provides that mode: execution proceeds in rounds, and in each round **every**
//! message that was in flight at the start of the round is delivered (in edge
//! order) before any message generated during the round is considered. Besides
//! serving as a sanity check that the protocols do not depend on asynchrony, the
//! round count is the natural "time" measure of the synchronous model.

use std::collections::VecDeque;

use anet_graph::Network;

use crate::engine::{ExecutionConfig, Outcome, RunResult};
use crate::metrics::RunMetrics;
use crate::trace::{SendEvent, Trace};
use crate::{AnonymousProtocol, NodeContext, Wire};

/// The result of a synchronous run: the usual [`RunResult`] plus the number of
/// rounds that elapsed before the terminal accepted (or the run quiesced).
#[derive(Debug, Clone)]
pub struct SynchronousRun<S, M> {
    /// The per-vertex states, metrics and trace, exactly as in the asynchronous
    /// engine.
    pub result: RunResult<S, M>,
    /// Number of completed rounds.
    pub rounds: u64,
}

/// Runs `protocol` on `network` in synchronous rounds.
///
/// Round 0 delivers the root's initial messages; round `r + 1` delivers everything
/// emitted during round `r`. The run stops at the end of the round in which the
/// terminal's stopping predicate first holds, when no messages remain, or when the
/// delivery budget is exhausted.
///
/// # Panics
///
/// Panics if the protocol emits on a non-existent out-port (a protocol bug).
pub fn run_synchronous<P>(
    network: &Network,
    protocol: &P,
    config: ExecutionConfig,
) -> SynchronousRun<P::State, P::Message>
where
    P: AnonymousProtocol,
{
    let graph = network.graph();
    let contexts: Vec<NodeContext> = graph
        .nodes()
        .map(|n| NodeContext::new(graph.in_degree(n), graph.out_degree(n)))
        .collect();
    let mut states: Vec<P::State> = contexts
        .iter()
        .map(|ctx| protocol.initial_state(ctx))
        .collect();
    let mut metrics = RunMetrics::new(graph.edge_count());
    let mut trace = if config.record_trace {
        Some(Trace::new())
    } else {
        None
    };
    let mut next_seq = 0u64;
    let terminal = network.terminal();

    // (edge, message) pairs to be delivered in the current round.
    let mut current: VecDeque<(anet_graph::EdgeId, P::Message)> = VecDeque::new();

    let send = |src: anet_graph::NodeId,
                port: usize,
                message: P::Message,
                queue: &mut VecDeque<(anet_graph::EdgeId, P::Message)>,
                metrics: &mut RunMetrics,
                trace: &mut Option<Trace<P::Message>>,
                next_seq: &mut u64| {
        let out = graph.out_edges(src);
        assert!(
            port < out.len(),
            "protocol {} emitted on out-port {port} of a vertex with out-degree {}",
            protocol.name(),
            out.len()
        );
        let edge = out[port];
        let bits = message.wire_bits();
        metrics.record_send(edge.index(), bits);
        if let Some(t) = trace.as_mut() {
            t.push(SendEvent {
                seq: *next_seq,
                edge,
                src,
                dst: graph.edge_dst(edge),
                bits,
                message: message.clone(),
            });
        }
        queue.push_back((edge, message));
        *next_seq += 1;
    };

    for (port, message) in protocol.root_messages(graph.out_degree(network.root())) {
        send(
            network.root(),
            port,
            message,
            &mut current,
            &mut metrics,
            &mut trace,
            &mut next_seq,
        );
    }

    let mut rounds = 0u64;
    let mut outcome = Outcome::Quiescent;
    let mut deliveries_at_termination = None;

    if protocol.should_terminate(&states[terminal.index()]) {
        return SynchronousRun {
            result: RunResult {
                outcome: Outcome::Terminated,
                states,
                metrics,
                deliveries_at_termination: Some(0),
                trace,
                delivery_order: None,
                step_log: None,
            },
            rounds,
        };
    }

    // The queue for the *next* round lives outside the loop: at the end of a
    // round the drained `current` and the filled `next` are swapped, so both
    // buffers (and their capacity) are reused for the whole run instead of
    // allocating a fresh queue per round.
    let mut next: VecDeque<(anet_graph::EdgeId, P::Message)> = VecDeque::new();

    'rounds: while !current.is_empty() {
        rounds += 1;
        while let Some((edge, message)) = current.pop_front() {
            if metrics.messages_delivered >= config.max_deliveries {
                outcome = Outcome::BudgetExhausted;
                break 'rounds;
            }
            let dst = graph.edge_dst(edge);
            metrics.record_delivery();
            let emitted = protocol.on_receive(
                &contexts[dst.index()],
                &mut states[dst.index()],
                graph.in_port(edge),
                &message,
            );
            for (port, out_message) in emitted {
                send(
                    dst,
                    port,
                    out_message,
                    &mut next,
                    &mut metrics,
                    &mut trace,
                    &mut next_seq,
                );
            }
            if dst == terminal && protocol.should_terminate(&states[terminal.index()]) {
                outcome = Outcome::Terminated;
                deliveries_at_termination = Some(metrics.messages_delivered);
                break 'rounds;
            }
        }
        std::mem::swap(&mut current, &mut next);
    }

    SynchronousRun {
        result: RunResult {
            outcome,
            states,
            metrics,
            deliveries_at_termination,
            trace,
            delivery_order: None,
            step_log: None,
        },
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anet_graph::generators::{chain_gn, path_network};

    /// Same toy flood protocol as the asynchronous engine tests.
    #[derive(Debug)]
    struct Flood {
        needed: u64,
    }

    #[derive(Debug, Clone)]
    struct FloodState {
        received: u64,
        forwarded: bool,
    }

    impl AnonymousProtocol for Flood {
        type State = FloodState;
        type Message = ();

        fn name(&self) -> &'static str {
            "flood"
        }
        fn initial_state(&self, _ctx: &NodeContext) -> FloodState {
            FloodState {
                received: 0,
                forwarded: false,
            }
        }
        fn root_messages(&self, root_out_degree: usize) -> Vec<(usize, ())> {
            (0..root_out_degree).map(|p| (p, ())).collect()
        }
        fn on_receive(
            &self,
            ctx: &NodeContext,
            state: &mut FloodState,
            _in_port: usize,
            _message: &(),
        ) -> Vec<(usize, ())> {
            state.received += 1;
            if state.forwarded {
                return Vec::new();
            }
            state.forwarded = true;
            (0..ctx.out_degree).map(|p| (p, ())).collect()
        }
        fn should_terminate(&self, terminal_state: &FloodState) -> bool {
            terminal_state.received >= self.needed
        }
    }

    #[test]
    fn rounds_equal_graph_depth_on_a_path() {
        // On a path of k internal vertices the terminal hears the flood after
        // exactly k + 1 rounds (one hop per round).
        let net = path_network(5).unwrap();
        let run = run_synchronous(&net, &Flood { needed: 1 }, ExecutionConfig::default());
        assert_eq!(run.result.outcome, Outcome::Terminated);
        assert_eq!(run.rounds, 6);
        assert_eq!(run.result.metrics.messages_sent, 6);
    }

    #[test]
    fn chain_terminates_when_all_tokens_arrive() {
        let net = chain_gn(6).unwrap();
        let run = run_synchronous(&net, &Flood { needed: 6 }, ExecutionConfig::default());
        assert_eq!(run.result.outcome, Outcome::Terminated);
        // The last token reaches t one round after the deepest vertex is reached.
        assert_eq!(run.rounds, 7);
        assert!(run.result.metrics.per_edge_messages.iter().all(|&c| c == 1));
    }

    #[test]
    fn quiesces_when_the_terminal_is_never_satisfied() {
        let net = path_network(3).unwrap();
        let run = run_synchronous(&net, &Flood { needed: 2 }, ExecutionConfig::default());
        assert_eq!(run.result.outcome, Outcome::Quiescent);
        assert!(run.rounds >= 4);
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let net = chain_gn(10).unwrap();
        let config = ExecutionConfig {
            max_deliveries: 3,
            record_trace: false,
        };
        let run = run_synchronous(&net, &Flood { needed: 10 }, config);
        assert_eq!(run.result.outcome, Outcome::BudgetExhausted);
    }

    #[test]
    fn trace_is_recorded_when_requested() {
        let net = chain_gn(3).unwrap();
        let run = run_synchronous(&net, &Flood { needed: 3 }, ExecutionConfig::with_trace());
        let trace = run.result.trace.expect("requested");
        assert_eq!(trace.len(), net.edge_count());
    }
}
