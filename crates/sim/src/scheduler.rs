//! Delivery schedulers — the "adversary" choosing the asynchronous interleaving.
//!
//! The model is asynchronous: in-flight messages may be delivered in any order.
//! Correctness claims (Theorems 3.1, 4.2, 5.1) must therefore hold for *every*
//! delivery order, and the tests replay each protocol under all the schedulers
//! defined here plus several random seeds. Messages on a single edge stay in FIFO
//! order (the engine keeps one queue per edge); the scheduler picks which edge
//! delivers next.
//!
//! # The incremental scheduler contract
//!
//! Schedulers are *stateful*: instead of being handed a freshly built list of all
//! pending edges on every delivery (which costs O(E) per delivery), they maintain
//! their own view of the **active-edge set** — the edges whose queues are
//! non-empty — from a stream of engine notifications:
//!
//! 1. [`Scheduler::begin_run`] is called once per run with the edge count.
//! 2. [`Scheduler::on_head`] is called whenever an edge's *head* message changes:
//!    when a send makes an idle edge active, and after a delivery that leaves the
//!    edge's queue non-empty (the next queued message becomes the head).
//! 3. [`Scheduler::on_idle`] is called when a delivery empties an edge's queue.
//! 4. [`Scheduler::next_edge`] is called only while at least one edge is active,
//!    and must return an active edge; the engine then delivers that edge's head
//!    and reports the edge's new state via exactly one `on_head` / `on_idle`
//!    before the next `next_edge` call.
//!
//! Under this contract every scheduler here runs in O(1) or O(log E) per
//! delivery: FIFO/LIFO and the two terminal adversaries keep binary heaps ordered
//! by head sequence number (one entry per *active edge*, never per message), and
//! the random scheduler keeps a Fenwick-indexed active set supporting uniform
//! order-statistics sampling.
//!
//! # The full-scan reference semantics
//!
//! Every scheduler also implements [`Scheduler::pick_full_scan`], the naive
//! specification it must agree with: given the complete candidate list (all
//! active edges in edge-id order), return the index of the edge to deliver. The
//! [`crate::reference`] engine drives runs entirely through `pick_full_scan`,
//! rebuilding the candidate list on every delivery, and the equivalence property
//! tests assert that both paths produce bit-identical traces. The incremental
//! implementations are constructed to agree *exactly*: sequence numbers are
//! unique, so each deterministic policy has a unique argmin/argmax, and the
//! random policy consumes one RNG draw per delivery in both paths and maps it to
//! the same rank in the same edge-id ordering.

use std::cmp::Reverse;
use std::collections::hash_map::Entry;
use std::collections::BinaryHeap;
use std::collections::HashMap;
use std::collections::VecDeque;

use anet_graph::{EdgeId, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What the engine should do with the head message of the edge the scheduler
/// just chose — the **fault contract** between schedulers and the engine.
///
/// After [`Scheduler::next_edge`] names an edge, the engine asks
/// [`Scheduler::deliver_action`] how to treat that edge's queue. Reliable
/// schedulers keep the provided default ([`SchedulerAction::Deliver`]) and
/// never see a difference; fault adapters such as
/// [`crate::faults::FaultyScheduler`] return the other variants to model lossy
/// and reordering adversaries. Whatever the action, the engine still reports
/// the edge's new queue state via exactly one
/// [`Scheduler::on_head`]/[`Scheduler::on_idle`] before the next
/// [`Scheduler::next_edge`] call, so inner schedulers stay consistent without
/// knowing faults exist.
///
/// Wire-bit accounting is unaffected by every variant: bits are charged at
/// *send* time, and the adversary manipulating deliveries transmits nothing of
/// its own.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerAction {
    /// Deliver the head message normally.
    Deliver,
    /// Silently discard the head message (lossy channel). No `on_receive`
    /// runs and nothing is delivered; the run's in-flight count decreases, so
    /// drops can only hasten quiescence, never livelock the engine.
    Drop,
    /// Deliver the head message *and* re-enqueue a copy of it at the tail of
    /// the same edge's queue with a fresh sequence number (duplicating
    /// channel). The copy is an adversary artifact: it is not a protocol
    /// send, so it is neither traced nor charged wire bits.
    Duplicate,
    /// The destination vertex is crashed: the head message is consumed and
    /// lost without running `on_receive` (delivery-while-crashed).
    NodeDown,
    /// Deliver the message at queue position `min(i, queue_len - 1)` instead
    /// of the head, reordering within the edge's queue. `Reorder(0)` is
    /// equivalent to [`SchedulerAction::Deliver`].
    Reorder(usize),
}

/// A candidate delivery offered to [`Scheduler::pick_full_scan`]: the head
/// message of one edge's queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingEdge {
    /// The edge whose head message would be delivered.
    pub edge: EdgeId,
    /// Global send sequence number of the head message (smaller = older).
    pub head_seq: u64,
    /// Number of messages queued on this edge.
    pub queue_len: usize,
    /// Whether this edge points at the terminal vertex.
    pub into_terminal: bool,
}

/// Chooses which pending edge delivers its head message next.
///
/// See the [module docs](self) for the incremental contract and how it relates
/// to the full-scan reference semantics.
pub trait Scheduler {
    /// A short name used in reports.
    fn name(&self) -> &'static str;

    /// Resets per-run structural state for a network with `edge_count` edges.
    ///
    /// Persistent state that deliberately survives across runs — the random
    /// scheduler's RNG stream — is *not* reset, matching the historical
    /// behaviour of reusing one scheduler for several runs.
    fn begin_run(&mut self, edge_count: usize);

    /// Notifies that `edge`'s head message is now the send with `head_seq`.
    fn on_head(&mut self, edge: EdgeId, head_seq: u64, into_terminal: bool);

    /// Notifies that `edge`'s queue drained and the edge is now idle.
    fn on_idle(&mut self, edge: EdgeId);

    /// Picks the next edge to deliver from. Called only while an edge is active.
    fn next_edge(&mut self) -> EdgeId;

    /// Reference semantics: picks an index into the (non-empty) candidate slice
    /// holding all active edges in increasing edge-id order.
    fn pick_full_scan(&mut self, candidates: &[PendingEdge]) -> usize;

    /// The fault hook: after [`Scheduler::next_edge`] (or
    /// [`Scheduler::pick_full_scan`]) chose `edge`, decides what the engine
    /// does with its queue. `dst` is the edge's destination vertex and
    /// `queue_len` the number of messages queued on the edge (≥ 1).
    ///
    /// Called exactly once per engine step, by both the incremental and the
    /// full-scan engine, so fault adapters consume their RNG identically on
    /// both paths. The default is reliable delivery, which keeps every
    /// pre-existing scheduler bit-identical to its historical behaviour.
    fn deliver_action(
        &mut self,
        _edge: EdgeId,
        _dst: NodeId,
        _queue_len: usize,
    ) -> SchedulerAction {
        SchedulerAction::Deliver
    }
}

/// Boxed schedulers forward every call, so adapters like
/// [`crate::faults::FaultyScheduler`] compose over `Box<dyn Scheduler>`
/// battery members without unboxing.
impl<S: Scheduler + ?Sized> Scheduler for Box<S> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn begin_run(&mut self, edge_count: usize) {
        (**self).begin_run(edge_count);
    }

    fn on_head(&mut self, edge: EdgeId, head_seq: u64, into_terminal: bool) {
        (**self).on_head(edge, head_seq, into_terminal);
    }

    fn on_idle(&mut self, edge: EdgeId) {
        (**self).on_idle(edge);
    }

    fn next_edge(&mut self) -> EdgeId {
        (**self).next_edge()
    }

    fn pick_full_scan(&mut self, candidates: &[PendingEdge]) -> usize {
        (**self).pick_full_scan(candidates)
    }

    fn deliver_action(&mut self, edge: EdgeId, dst: NodeId, queue_len: usize) -> SchedulerAction {
        (**self).deliver_action(edge, dst, queue_len)
    }
}

/// A binary heap over the heads of active edges, keyed by head sequence number.
///
/// The engine's notification contract guarantees one live entry per active edge:
/// an edge's head only changes when its own head is delivered, and the delivered
/// entry is exactly the one `pop` removed. No lazy invalidation is needed.
#[derive(Debug, Clone, Default)]
struct MinHeadHeap {
    heap: BinaryHeap<Reverse<(u64, EdgeId)>>,
}

impl MinHeadHeap {
    fn clear(&mut self) {
        self.heap.clear();
    }

    fn push(&mut self, seq: u64, edge: EdgeId) {
        self.heap.push(Reverse((seq, edge)));
    }

    fn pop(&mut self) -> Option<EdgeId> {
        self.heap.pop().map(|Reverse((_, edge))| edge)
    }

    fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Delivers the globally oldest in-flight message first (classic FIFO network).
#[derive(Debug, Clone, Default)]
pub struct FifoScheduler {
    heads: MinHeadHeap,
}

impl FifoScheduler {
    /// Creates a FIFO scheduler.
    pub fn new() -> Self {
        FifoScheduler::default()
    }
}

impl Scheduler for FifoScheduler {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn begin_run(&mut self, _edge_count: usize) {
        self.heads.clear();
    }

    fn on_head(&mut self, edge: EdgeId, head_seq: u64, _into_terminal: bool) {
        self.heads.push(head_seq, edge);
    }

    fn on_idle(&mut self, _edge: EdgeId) {}

    fn next_edge(&mut self) -> EdgeId {
        self.heads
            .pop()
            .expect("next_edge called with no active edge")
    }

    fn pick_full_scan(&mut self, candidates: &[PendingEdge]) -> usize {
        candidates
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| c.head_seq)
            .map(|(i, _)| i)
            .expect("candidates are non-empty")
    }
}

/// Delivers the newest *head* message first — a "bursty" adversary that lets
/// freshly created messages overtake old ones (per-edge queues stay FIFO, so the
/// comparison is over the head of each active edge).
#[derive(Debug, Clone, Default)]
pub struct LifoScheduler {
    heads: BinaryHeap<(u64, EdgeId)>,
}

impl LifoScheduler {
    /// Creates a LIFO scheduler.
    pub fn new() -> Self {
        LifoScheduler::default()
    }
}

impl Scheduler for LifoScheduler {
    fn name(&self) -> &'static str {
        "lifo"
    }

    fn begin_run(&mut self, _edge_count: usize) {
        self.heads.clear();
    }

    fn on_head(&mut self, edge: EdgeId, head_seq: u64, _into_terminal: bool) {
        self.heads.push((head_seq, edge));
    }

    fn on_idle(&mut self, _edge: EdgeId) {}

    fn next_edge(&mut self) -> EdgeId {
        let (_, edge) = self
            .heads
            .pop()
            .expect("next_edge called with no active edge");
        edge
    }

    fn pick_full_scan(&mut self, candidates: &[PendingEdge]) -> usize {
        candidates
            .iter()
            .enumerate()
            .max_by_key(|(_, c)| c.head_seq)
            .map(|(i, _)| i)
            .expect("candidates are non-empty")
    }
}

/// Shared core of the two terminal adversaries: active edges are kept in two
/// oldest-first classes, edges into the terminal and everything else, and
/// `next_edge` drains one class before touching the other.
#[derive(Debug, Clone, Default)]
struct TwoClassHeads {
    terminal: MinHeadHeap,
    other: MinHeadHeap,
}

impl TwoClassHeads {
    fn clear(&mut self) {
        self.terminal.clear();
        self.other.clear();
    }

    fn push(&mut self, edge: EdgeId, head_seq: u64, into_terminal: bool) {
        if into_terminal {
            self.terminal.push(head_seq, edge);
        } else {
            self.other.push(head_seq, edge);
        }
    }

    /// Pops the oldest head from the preferred class, falling back to the other.
    fn pop_preferring(&mut self, terminal_first: bool) -> EdgeId {
        let (first, second) = if terminal_first {
            (&mut self.terminal, &mut self.other)
        } else {
            (&mut self.other, &mut self.terminal)
        };
        let heap = if first.is_empty() { second } else { first };
        heap.pop().expect("next_edge called with no active edge")
    }
}

/// Starves the terminal: edges *not* pointing at the terminal are drained first
/// (oldest first), and messages into the terminal are delivered only when nothing
/// else is pending. This is the adversary that maximises how much of the graph has
/// acted before the terminal sees anything.
#[derive(Debug, Clone, Default)]
pub struct TerminalLastScheduler {
    heads: TwoClassHeads,
}

impl TerminalLastScheduler {
    /// Creates a terminal-starving scheduler.
    pub fn new() -> Self {
        TerminalLastScheduler::default()
    }
}

impl Scheduler for TerminalLastScheduler {
    fn name(&self) -> &'static str {
        "terminal-last"
    }

    fn begin_run(&mut self, _edge_count: usize) {
        self.heads.clear();
    }

    fn on_head(&mut self, edge: EdgeId, head_seq: u64, into_terminal: bool) {
        self.heads.push(edge, head_seq, into_terminal);
    }

    fn on_idle(&mut self, _edge: EdgeId) {}

    fn next_edge(&mut self) -> EdgeId {
        self.heads.pop_preferring(false)
    }

    fn pick_full_scan(&mut self, candidates: &[PendingEdge]) -> usize {
        candidates
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| (c.into_terminal, c.head_seq))
            .map(|(i, _)| i)
            .expect("candidates are non-empty")
    }
}

/// Rushes the terminal: messages into the terminal are delivered as soon as they
/// exist. This adversary tries to make the terminal accept *early* and is the one
/// that catches premature-termination bugs.
#[derive(Debug, Clone, Default)]
pub struct TerminalFirstScheduler {
    heads: TwoClassHeads,
}

impl TerminalFirstScheduler {
    /// Creates a terminal-rushing scheduler.
    pub fn new() -> Self {
        TerminalFirstScheduler::default()
    }
}

impl Scheduler for TerminalFirstScheduler {
    fn name(&self) -> &'static str {
        "terminal-first"
    }

    fn begin_run(&mut self, _edge_count: usize) {
        self.heads.clear();
    }

    fn on_head(&mut self, edge: EdgeId, head_seq: u64, into_terminal: bool) {
        self.heads.push(edge, head_seq, into_terminal);
    }

    fn on_idle(&mut self, _edge: EdgeId) {}

    fn next_edge(&mut self) -> EdgeId {
        self.heads.pop_preferring(true)
    }

    fn pick_full_scan(&mut self, candidates: &[PendingEdge]) -> usize {
        candidates
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| (!c.into_terminal, c.head_seq))
            .map(|(i, _)| i)
            .expect("candidates are non-empty")
    }
}

/// Follows the causal frontier depth-first: the edges whose heads changed most
/// recently are drained first, oldest head first within a batch.
///
/// Each pick opens a new *step*; every head notification arriving before the
/// next pick (the sends emitted by that delivery, plus the delivered edge's
/// own next queued message) is stamped with the current step. [`Self::next_edge`]
/// pops the maximum stamp and breaks ties by **minimum** head sequence, so a
/// fresh fan-out is explored child subtree by child subtree in ascending port
/// order before the scheduler backtracks to older frontiers — the delivery
/// order of a forward depth-first traversal. (LIFO is the *reverse*: its
/// newest-head-first rule walks a fan-out in descending port order.)
///
/// This is the cache-dense order for the interval protocols: labels are
/// claimed in ascending positional order and reach the terminal as ascending,
/// adjacent runs, so the terminal's absorption stays on `IntervalUnion`'s
/// amortized O(1) append path instead of the O(parts) mid-array insertions
/// that LIFO (reverse-DFS) and FIFO (BFS) provoke. The scaling bench drives
/// its large-`n` cells with this scheduler for exactly that reason.
///
/// It is deliberately **not** part of [`standard_battery`]: extending the
/// battery would change its pinned shape and every committed sweep
/// fingerprint.
#[derive(Debug, Clone, Default)]
pub struct DepthFirstScheduler {
    /// One live entry per active edge: `(stamp, Reverse(head_seq), edge)`.
    /// Head sequences are unique, so the edge id never decides a comparison.
    heads: BinaryHeap<(u64, Reverse<u64>, EdgeId)>,
    /// The current step, incremented once per pick; head changes reported
    /// between two picks all carry the same stamp.
    step: u64,
    /// Full-scan mirror of the stamps: edge → (stamp, head sequence observed
    /// when that stamp was assigned).
    scan_stamps: HashMap<EdgeId, (u64, u64)>,
    /// The edge chosen by the previous full-scan pick. Its head is restamped
    /// even when the sequence is unchanged (possible under reordering faults),
    /// mirroring the engine's unconditional [`Scheduler::on_head`] for the
    /// delivered edge.
    scan_last: Option<EdgeId>,
}

impl DepthFirstScheduler {
    /// Creates a depth-first scheduler.
    pub fn new() -> Self {
        DepthFirstScheduler::default()
    }
}

impl Scheduler for DepthFirstScheduler {
    fn name(&self) -> &'static str {
        "depth-first"
    }

    fn begin_run(&mut self, _edge_count: usize) {
        self.heads.clear();
        self.step = 0;
        self.scan_stamps.clear();
        self.scan_last = None;
    }

    fn on_head(&mut self, edge: EdgeId, head_seq: u64, _into_terminal: bool) {
        self.heads.push((self.step, Reverse(head_seq), edge));
    }

    fn on_idle(&mut self, _edge: EdgeId) {}

    fn next_edge(&mut self) -> EdgeId {
        let (_, _, edge) = self
            .heads
            .pop()
            .expect("next_edge called with no active edge");
        self.step += 1;
        edge
    }

    fn pick_full_scan(&mut self, candidates: &[PendingEdge]) -> usize {
        for c in candidates {
            let restamp = self.scan_last == Some(c.edge);
            match self.scan_stamps.entry(c.edge) {
                Entry::Occupied(mut slot) => {
                    let (stamp, seq) = slot.get_mut();
                    if restamp || *seq != c.head_seq {
                        *stamp = self.step;
                        *seq = c.head_seq;
                    }
                }
                Entry::Vacant(slot) => {
                    slot.insert((self.step, c.head_seq));
                }
            }
        }
        let pick = candidates
            .iter()
            .enumerate()
            .max_by_key(|(_, c)| (self.scan_stamps[&c.edge].0, Reverse(c.head_seq)))
            .map(|(i, _)| i)
            .expect("candidates are non-empty");
        self.scan_last = Some(candidates[pick].edge);
        self.step += 1;
        pick
    }
}

/// A Fenwick-indexed set of active edges supporting O(log E) insert, remove and
/// *select-by-rank* (the k-th smallest active edge id).
///
/// Rank selection is what lets the incremental random scheduler agree exactly
/// with the full-scan reference: the reference samples an index into the
/// candidate list, which holds active edges in increasing edge-id order, so the
/// sampled index *is* a rank in this set.
#[derive(Debug, Clone, Default)]
struct ActiveEdgeSet {
    /// Fenwick (binary indexed) tree over edge ids; `tree[i]` covers a dyadic
    /// block of ids, 1-based.
    tree: Vec<u32>,
    active: Vec<bool>,
    len: usize,
}

impl ActiveEdgeSet {
    fn reset(&mut self, edge_count: usize) {
        self.tree.clear();
        self.tree.resize(edge_count + 1, 0);
        self.active.clear();
        self.active.resize(edge_count, false);
        self.len = 0;
    }

    fn len(&self) -> usize {
        self.len
    }

    #[cfg(test)]
    fn contains(&self, edge: EdgeId) -> bool {
        self.active[edge.index()]
    }

    fn add(&mut self, delta: i32, index: usize) {
        let mut i = index + 1;
        while i < self.tree.len() {
            self.tree[i] = (self.tree[i] as i32 + delta) as u32;
            i += i & i.wrapping_neg();
        }
    }

    fn insert(&mut self, edge: EdgeId) {
        if !self.active[edge.index()] {
            self.active[edge.index()] = true;
            self.len += 1;
            self.add(1, edge.index());
        }
    }

    fn remove(&mut self, edge: EdgeId) {
        if self.active[edge.index()] {
            self.active[edge.index()] = false;
            self.len -= 1;
            self.add(-1, edge.index());
        }
    }

    /// Returns the active edge with exactly `rank` active edges below it
    /// (`rank` is 0-based and must be `< len`).
    fn select(&self, rank: usize) -> EdgeId {
        debug_assert!(rank < self.len);
        let mut remaining = rank as u32 + 1;
        let mut pos = 0usize;
        let mut step = (self.tree.len() - 1).next_power_of_two();
        while step > 0 {
            let next = pos + step;
            if next < self.tree.len() && self.tree[next] < remaining {
                remaining -= self.tree[next];
                pos = next;
            }
            step >>= 1;
        }
        EdgeId(pos)
    }
}

/// Delivers a uniformly random pending message (seeded, hence reproducible).
///
/// The RNG stream deliberately persists across [`Scheduler::begin_run`] calls so
/// one seeded scheduler reused for several runs explores different orders.
#[derive(Debug, Clone)]
pub struct RandomScheduler {
    rng: StdRng,
    active: ActiveEdgeSet,
}

impl RandomScheduler {
    /// Creates a random scheduler from a seed.
    pub fn seeded(seed: u64) -> Self {
        RandomScheduler {
            rng: StdRng::seed_from_u64(seed),
            active: ActiveEdgeSet::default(),
        }
    }
}

impl Scheduler for RandomScheduler {
    fn name(&self) -> &'static str {
        "random"
    }

    fn begin_run(&mut self, edge_count: usize) {
        self.active.reset(edge_count);
    }

    fn on_head(&mut self, edge: EdgeId, _head_seq: u64, _into_terminal: bool) {
        self.active.insert(edge);
    }

    fn on_idle(&mut self, edge: EdgeId) {
        self.active.remove(edge);
    }

    fn next_edge(&mut self) -> EdgeId {
        assert!(
            self.active.len() > 0,
            "next_edge called with no active edge"
        );
        let rank = self.rng.gen_range(0..self.active.len());
        self.active.select(rank)
    }

    fn pick_full_scan(&mut self, candidates: &[PendingEdge]) -> usize {
        self.rng.gen_range(0..candidates.len())
    }
}

/// Replays a prescribed edge delivery order — the reference path for pinning an
/// exact interleaving (for example one observed under another scheduler, or a
/// hand-written adversarial order) and re-running it through either engine.
///
/// [`ReplayScheduler::with_steps`] additionally replays a
/// [`SchedulerAction`] per step, reproducing a *faulty* run (drops,
/// duplicates, reorders, crashes) bit-identically from its recorded
/// [`crate::RunResult::step_log`].
#[derive(Debug, Clone, Default)]
pub struct ReplayScheduler {
    order: VecDeque<EdgeId>,
    actions: Option<VecDeque<SchedulerAction>>,
}

impl ReplayScheduler {
    /// Creates a scheduler that delivers edges in exactly the given order.
    ///
    /// The order must be *feasible*: at each step the named edge must have a
    /// queued message. Both engines panic on an infeasible replay, which is the
    /// desired behaviour for a cross-checking tool.
    pub fn new<I: IntoIterator<Item = EdgeId>>(order: I) -> Self {
        ReplayScheduler {
            order: order.into_iter().collect(),
            actions: None,
        }
    }

    /// Creates a scheduler that replays `(edge, action)` steps — typically a
    /// recorded [`crate::RunResult::step_log`] — reproducing a faulty run
    /// exactly: the same edges are chosen and the same drops, duplicates,
    /// reorders and crash losses are re-applied.
    pub fn with_steps<I: IntoIterator<Item = (EdgeId, SchedulerAction)>>(steps: I) -> Self {
        let (order, actions): (VecDeque<EdgeId>, VecDeque<SchedulerAction>) =
            steps.into_iter().unzip();
        ReplayScheduler {
            order,
            actions: Some(actions),
        }
    }

    /// Number of replay steps left.
    pub fn remaining(&self) -> usize {
        self.order.len()
    }
}

impl Scheduler for ReplayScheduler {
    fn name(&self) -> &'static str {
        "replay"
    }

    fn begin_run(&mut self, _edge_count: usize) {}

    fn on_head(&mut self, _edge: EdgeId, _head_seq: u64, _into_terminal: bool) {}

    fn on_idle(&mut self, _edge: EdgeId) {}

    fn next_edge(&mut self) -> EdgeId {
        self.order.pop_front().expect("replay order exhausted")
    }

    fn pick_full_scan(&mut self, candidates: &[PendingEdge]) -> usize {
        let edge = self.next_edge();
        candidates
            .iter()
            .position(|c| c.edge == edge)
            .expect("replayed edge is not pending — infeasible replay order")
    }

    fn deliver_action(
        &mut self,
        _edge: EdgeId,
        _dst: NodeId,
        _queue_len: usize,
    ) -> SchedulerAction {
        match self.actions.as_mut() {
            Some(actions) => actions.pop_front().expect("replay actions exhausted"),
            None => SchedulerAction::Deliver,
        }
    }
}

/// The standard battery of schedulers used by correctness tests: FIFO, LIFO, both
/// adversaries and `random_count` seeded random schedules derived from `seed`.
pub fn standard_battery(seed: u64, random_count: usize) -> Vec<Box<dyn Scheduler>> {
    let mut battery: Vec<Box<dyn Scheduler>> = vec![
        Box::new(FifoScheduler::new()),
        Box::new(LifoScheduler::new()),
        Box::new(TerminalLastScheduler::new()),
        Box::new(TerminalFirstScheduler::new()),
    ];
    for i in 0..random_count {
        battery.push(Box::new(RandomScheduler::seeded(
            seed.wrapping_add(i as u64),
        )));
    }
    battery
}

/// Display names of the deterministic schedulers that open every
/// [`standard_battery`], in battery order. Its length is the battery's
/// deterministic prefix; positions from here on are the seeded random
/// schedulers. `standard_battery_names_match` pins agreement with the actual
/// scheduler values.
pub const DETERMINISTIC_BATTERY_NAMES: &[&str] =
    &["fifo", "lifo", "terminal-last", "terminal-first"];

/// The unique display name of battery position `position` in a
/// `standard_battery(_, random_count)`: the scheduler's own name for the
/// deterministic prefix, and `random#<i>` for the `i`-th random scheduler
/// (whose `name()` alone would not distinguish battery positions).
///
/// This enumerates names *without constructing scheduler values*, for planners
/// like the sweep manifest that label grid cells.
///
/// # Panics
///
/// Panics if `position` is out of range for the battery.
pub fn battery_scheduler_name(position: usize, random_count: usize) -> String {
    let deterministic = DETERMINISTIC_BATTERY_NAMES.len();
    assert!(
        position < deterministic + random_count,
        "battery position {position} out of range for battery of {}",
        deterministic + random_count
    );
    match DETERMINISTIC_BATTERY_NAMES.get(position) {
        Some(name) => (*name).to_owned(),
        None => format!("random#{}", position - deterministic),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidates() -> Vec<PendingEdge> {
        vec![
            PendingEdge {
                edge: EdgeId(0),
                head_seq: 5,
                queue_len: 1,
                into_terminal: false,
            },
            PendingEdge {
                edge: EdgeId(1),
                head_seq: 2,
                queue_len: 2,
                into_terminal: true,
            },
            PendingEdge {
                edge: EdgeId(2),
                head_seq: 9,
                queue_len: 1,
                into_terminal: false,
            },
        ]
    }

    /// Feeds the candidate set into the incremental API and returns the pick.
    fn incremental_pick<S: Scheduler>(sched: &mut S) -> EdgeId {
        sched.begin_run(4);
        for c in candidates() {
            sched.on_head(c.edge, c.head_seq, c.into_terminal);
        }
        sched.next_edge()
    }

    #[test]
    fn fifo_picks_oldest() {
        assert_eq!(FifoScheduler::new().pick_full_scan(&candidates()), 1);
        assert_eq!(incremental_pick(&mut FifoScheduler::new()), EdgeId(1));
    }

    #[test]
    fn lifo_picks_newest() {
        assert_eq!(LifoScheduler::new().pick_full_scan(&candidates()), 2);
        assert_eq!(incremental_pick(&mut LifoScheduler::new()), EdgeId(2));
    }

    #[test]
    fn terminal_last_avoids_terminal_edges() {
        assert_eq!(
            TerminalLastScheduler::new().pick_full_scan(&candidates()),
            0
        );
        assert_eq!(
            incremental_pick(&mut TerminalLastScheduler::new()),
            EdgeId(0)
        );
        // If only terminal edges are pending it must still pick one.
        let only_terminal = vec![PendingEdge {
            edge: EdgeId(3),
            head_seq: 1,
            queue_len: 1,
            into_terminal: true,
        }];
        assert_eq!(
            TerminalLastScheduler::new().pick_full_scan(&only_terminal),
            0
        );
        let mut sched = TerminalLastScheduler::new();
        sched.begin_run(4);
        sched.on_head(EdgeId(3), 1, true);
        assert_eq!(sched.next_edge(), EdgeId(3));
    }

    #[test]
    fn terminal_first_prefers_terminal_edges() {
        assert_eq!(
            TerminalFirstScheduler::new().pick_full_scan(&candidates()),
            1
        );
        assert_eq!(
            incremental_pick(&mut TerminalFirstScheduler::new()),
            EdgeId(1)
        );
    }

    #[test]
    fn head_heaps_follow_head_changes() {
        // Edge 0 holds seqs [1, 4], edge 1 holds [3]. FIFO must deliver 1, 3, 4:
        // after edge 0's head advances past seq 1, seq 3 on edge 1 is older than
        // edge 0's new head.
        let mut sched = FifoScheduler::new();
        sched.begin_run(2);
        sched.on_head(EdgeId(0), 1, false);
        sched.on_head(EdgeId(1), 3, false);
        assert_eq!(sched.next_edge(), EdgeId(0));
        sched.on_head(EdgeId(0), 4, false); // seq 4 becomes edge 0's head
        assert_eq!(sched.next_edge(), EdgeId(1));
        sched.on_idle(EdgeId(1));
        assert_eq!(sched.next_edge(), EdgeId(0));
    }

    #[test]
    fn depth_first_chases_the_freshest_fanout_in_port_order() {
        // Root fan-out: edges 0..3 become active before the first pick (stamp
        // 0), oldest seq first → edge 0. Its delivery activates edges 4 and 5
        // (stamp 1): the new frontier is drained (oldest first) before the
        // scheduler backtracks to the remaining stamp-0 edges in seq order.
        let mut sched = DepthFirstScheduler::new();
        sched.begin_run(8);
        for e in 0..3u64 {
            sched.on_head(EdgeId(e as usize), e, false);
        }
        assert_eq!(sched.next_edge(), EdgeId(0));
        sched.on_head(EdgeId(4), 10, false);
        sched.on_head(EdgeId(5), 11, false);
        assert_eq!(sched.next_edge(), EdgeId(4));
        sched.on_idle(EdgeId(4));
        assert_eq!(sched.next_edge(), EdgeId(5));
        sched.on_idle(EdgeId(5));
        assert_eq!(sched.next_edge(), EdgeId(1));
        sched.on_idle(EdgeId(1));
        assert_eq!(sched.next_edge(), EdgeId(2));
    }

    #[test]
    fn depth_first_full_scan_matches_incremental() {
        // Replays the exact scenario above through `pick_full_scan`, with the
        // candidate list rebuilt (edge-id order) at every step the way the
        // full-scan engine does.
        let cand = |edge: usize, head_seq: u64| PendingEdge {
            edge: EdgeId(edge),
            head_seq,
            queue_len: 1,
            into_terminal: false,
        };
        let mut sched = DepthFirstScheduler::new();
        sched.begin_run(8);
        let steps: &[(&[PendingEdge], usize)] = &[
            (&[cand(0, 0), cand(1, 1), cand(2, 2)], 0),
            // Edge 0 went idle; its sends activated edges 4 and 5.
            (&[cand(1, 1), cand(2, 2), cand(4, 10), cand(5, 11)], 2),
            (&[cand(1, 1), cand(2, 2), cand(5, 11)], 2),
            (&[cand(1, 1), cand(2, 2)], 0),
            (&[cand(2, 2)], 0),
        ];
        for (candidates, expected) in steps {
            assert_eq!(sched.pick_full_scan(candidates), *expected);
        }
    }

    #[test]
    fn depth_first_restamps_a_surviving_head() {
        // After a pick, the chosen edge's next head belongs to the *new*
        // frontier even on the full-scan path — including when the head
        // sequence is unchanged (reorder faults deliver mid-queue).
        let mut inc = DepthFirstScheduler::new();
        inc.begin_run(4);
        inc.on_head(EdgeId(0), 0, false);
        inc.on_head(EdgeId(1), 1, false);
        assert_eq!(inc.next_edge(), EdgeId(0));
        // Queue on edge 0 still non-empty: head advances to seq 5, which is
        // fresher (stamp 1) than edge 1's stamp-0 head despite the larger seq.
        inc.on_head(EdgeId(0), 5, false);
        assert_eq!(inc.next_edge(), EdgeId(0));

        let cand = |edge: usize, head_seq: u64| PendingEdge {
            edge: EdgeId(edge),
            head_seq,
            queue_len: 2,
            into_terminal: false,
        };
        let mut full = DepthFirstScheduler::new();
        full.begin_run(4);
        let picks = [
            full.pick_full_scan(&[cand(0, 0), cand(1, 1)]),
            full.pick_full_scan(&[cand(0, 5), cand(1, 1)]),
            // A reorder fault consumed a mid-queue message: edge 0's head seq
            // is *unchanged*, yet it was the delivered edge, so it restamps.
            full.pick_full_scan(&[cand(0, 5), cand(1, 1)]),
        ];
        assert_eq!(picks, [0, 0, 0]);
    }

    #[test]
    fn depth_first_is_not_in_the_standard_battery() {
        // The battery shape is pinned by committed sweep fingerprints.
        let names: Vec<&str> = standard_battery(1, 2).iter().map(|s| s.name()).collect();
        assert!(!names.contains(&"depth-first"));
    }

    #[test]
    fn random_is_reproducible_and_in_range() {
        let cands = candidates();
        let picks_a: Vec<usize> = {
            let mut s = RandomScheduler::seeded(3);
            (0..20).map(|_| s.pick_full_scan(&cands)).collect()
        };
        let picks_b: Vec<usize> = {
            let mut s = RandomScheduler::seeded(3);
            (0..20).map(|_| s.pick_full_scan(&cands)).collect()
        };
        assert_eq!(picks_a, picks_b);
        assert!(picks_a.iter().all(|&p| p < cands.len()));
    }

    #[test]
    fn random_incremental_matches_full_scan_rank() {
        // Same seed: the incremental path must choose exactly the edge that the
        // full-scan path's sampled index denotes in the edge-id-ordered
        // candidate list, draw for draw.
        let active = [EdgeId(2), EdgeId(5), EdgeId(7), EdgeId(11)];
        for seed in 0..50 {
            let mut inc = RandomScheduler::seeded(seed);
            inc.begin_run(16);
            for (i, &e) in active.iter().enumerate() {
                inc.on_head(e, i as u64, false);
            }
            let mut full = RandomScheduler::seeded(seed);
            let cands: Vec<PendingEdge> = active
                .iter()
                .enumerate()
                .map(|(i, &edge)| PendingEdge {
                    edge,
                    head_seq: i as u64,
                    queue_len: 1,
                    into_terminal: false,
                })
                .collect();
            for _ in 0..10 {
                let chosen = inc.next_edge();
                let idx = full.pick_full_scan(&cands);
                assert_eq!(chosen, cands[idx].edge);
                // Both sides keep the edge active (head advance, not idle).
            }
        }
    }

    #[test]
    fn active_edge_set_select_is_order_statistics() {
        let mut set = ActiveEdgeSet::default();
        set.reset(10);
        for e in [3usize, 0, 7, 9, 4] {
            set.insert(EdgeId(e));
        }
        assert_eq!(set.len(), 5);
        let ranks: Vec<EdgeId> = (0..5).map(|k| set.select(k)).collect();
        assert_eq!(
            ranks,
            vec![EdgeId(0), EdgeId(3), EdgeId(4), EdgeId(7), EdgeId(9)]
        );
        set.remove(EdgeId(3));
        assert_eq!(set.select(1), EdgeId(4));
        assert!(set.contains(EdgeId(7)));
        assert!(!set.contains(EdgeId(3)));
        // Idempotent inserts and removes keep the count exact.
        set.insert(EdgeId(7));
        set.remove(EdgeId(3));
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn replay_scheduler_replays_in_order() {
        let mut sched = ReplayScheduler::new([EdgeId(2), EdgeId(0)]);
        assert_eq!(sched.remaining(), 2);
        sched.begin_run(3);
        assert_eq!(sched.next_edge(), EdgeId(2));
        let idx = sched.pick_full_scan(&candidates());
        assert_eq!(candidates()[idx].edge, EdgeId(0));
        assert_eq!(sched.remaining(), 0);
    }

    #[test]
    fn replay_with_steps_replays_edges_and_actions() {
        let mut sched = ReplayScheduler::with_steps([
            (EdgeId(2), SchedulerAction::Drop),
            (EdgeId(0), SchedulerAction::Reorder(3)),
        ]);
        sched.begin_run(3);
        let edge = sched.next_edge();
        assert_eq!(edge, EdgeId(2));
        assert_eq!(
            sched.deliver_action(edge, NodeId(0), 1),
            SchedulerAction::Drop
        );
        let edge = sched.next_edge();
        assert_eq!(edge, EdgeId(0));
        assert_eq!(
            sched.deliver_action(edge, NodeId(0), 4),
            SchedulerAction::Reorder(3)
        );
        assert_eq!(sched.remaining(), 0);
        // Plain schedulers always answer Deliver through the default hook.
        assert_eq!(
            FifoScheduler::new().deliver_action(EdgeId(0), NodeId(0), 1),
            SchedulerAction::Deliver
        );
    }

    #[test]
    fn battery_has_expected_size_and_names() {
        let battery = standard_battery(1, 3);
        assert_eq!(battery.len(), 7);
        let names: Vec<&str> = battery.iter().map(|s| s.name()).collect();
        assert!(names.contains(&"fifo"));
        assert!(names.contains(&"terminal-last"));
    }

    #[test]
    fn standard_battery_names_match() {
        // `battery_scheduler_name` must agree with the actual scheduler values
        // of every battery: the deterministic prefix verbatim, the random tail
        // as `random#<i>`.
        for random_count in [0usize, 1, 3] {
            let battery = standard_battery(9, random_count);
            assert_eq!(
                battery.len(),
                DETERMINISTIC_BATTERY_NAMES.len() + random_count
            );
            for (position, scheduler) in battery.iter().enumerate() {
                let label = battery_scheduler_name(position, random_count);
                if position < DETERMINISTIC_BATTERY_NAMES.len() {
                    assert_eq!(label, scheduler.name());
                } else {
                    assert_eq!(
                        label,
                        format!(
                            "{}#{}",
                            scheduler.name(),
                            position - DETERMINISTIC_BATTERY_NAMES.len()
                        )
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "battery position")]
    fn battery_name_out_of_range_panics() {
        let _ = battery_scheduler_name(6, 2);
    }
}
