//! Delivery schedulers — the "adversary" choosing the asynchronous interleaving.
//!
//! The model is asynchronous: in-flight messages may be delivered in any order.
//! Correctness claims (Theorems 3.1, 4.2, 5.1) must therefore hold for *every*
//! delivery order, and the tests replay each protocol under all the schedulers
//! defined here plus several random seeds. Messages on a single edge stay in FIFO
//! order (the engine keeps one queue per edge); the scheduler picks which edge
//! delivers next.

use anet_graph::EdgeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A candidate delivery offered to the scheduler: the head message of one edge's
/// queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingEdge {
    /// The edge whose head message would be delivered.
    pub edge: EdgeId,
    /// Global send sequence number of the head message (smaller = older).
    pub head_seq: u64,
    /// Number of messages queued on this edge.
    pub queue_len: usize,
    /// Whether this edge points at the terminal vertex.
    pub into_terminal: bool,
}

/// Chooses which pending edge delivers its head message next.
///
/// Implementations must return an index into the (non-empty) candidate slice.
pub trait Scheduler {
    /// Picks the next delivery among `candidates` (guaranteed non-empty).
    fn pick(&mut self, candidates: &[PendingEdge]) -> usize;

    /// A short name used in reports.
    fn name(&self) -> &'static str;
}

/// Delivers the globally oldest in-flight message first (classic FIFO network).
#[derive(Debug, Clone, Copy, Default)]
pub struct FifoScheduler;

impl FifoScheduler {
    /// Creates a FIFO scheduler.
    pub fn new() -> Self {
        FifoScheduler
    }
}

impl Scheduler for FifoScheduler {
    fn pick(&mut self, candidates: &[PendingEdge]) -> usize {
        candidates
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| c.head_seq)
            .map(|(i, _)| i)
            .expect("candidates are non-empty")
    }

    fn name(&self) -> &'static str {
        "fifo"
    }
}

/// Delivers the newest in-flight message first — a "bursty" adversary that lets
/// freshly created messages overtake old ones.
#[derive(Debug, Clone, Copy, Default)]
pub struct LifoScheduler;

impl LifoScheduler {
    /// Creates a LIFO scheduler.
    pub fn new() -> Self {
        LifoScheduler
    }
}

impl Scheduler for LifoScheduler {
    fn pick(&mut self, candidates: &[PendingEdge]) -> usize {
        candidates
            .iter()
            .enumerate()
            .max_by_key(|(_, c)| c.head_seq)
            .map(|(i, _)| i)
            .expect("candidates are non-empty")
    }

    fn name(&self) -> &'static str {
        "lifo"
    }
}

/// Delivers a uniformly random pending message (seeded, hence reproducible).
#[derive(Debug, Clone)]
pub struct RandomScheduler {
    rng: StdRng,
}

impl RandomScheduler {
    /// Creates a random scheduler from a seed.
    pub fn seeded(seed: u64) -> Self {
        RandomScheduler {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Scheduler for RandomScheduler {
    fn pick(&mut self, candidates: &[PendingEdge]) -> usize {
        self.rng.gen_range(0..candidates.len())
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

/// Starves the terminal: edges *not* pointing at the terminal are drained first
/// (oldest first), and messages into the terminal are delivered only when nothing
/// else is pending. This is the adversary that maximises how much of the graph has
/// acted before the terminal sees anything.
#[derive(Debug, Clone, Copy, Default)]
pub struct TerminalLastScheduler;

impl TerminalLastScheduler {
    /// Creates a terminal-starving scheduler.
    pub fn new() -> Self {
        TerminalLastScheduler
    }
}

impl Scheduler for TerminalLastScheduler {
    fn pick(&mut self, candidates: &[PendingEdge]) -> usize {
        candidates
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| (c.into_terminal, c.head_seq))
            .map(|(i, _)| i)
            .expect("candidates are non-empty")
    }

    fn name(&self) -> &'static str {
        "terminal-last"
    }
}

/// Rushes the terminal: messages into the terminal are delivered as soon as they
/// exist. This adversary tries to make the terminal accept *early* and is the one
/// that catches premature-termination bugs.
#[derive(Debug, Clone, Copy, Default)]
pub struct TerminalFirstScheduler;

impl TerminalFirstScheduler {
    /// Creates a terminal-rushing scheduler.
    pub fn new() -> Self {
        TerminalFirstScheduler
    }
}

impl Scheduler for TerminalFirstScheduler {
    fn pick(&mut self, candidates: &[PendingEdge]) -> usize {
        candidates
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| (!c.into_terminal, c.head_seq))
            .map(|(i, _)| i)
            .expect("candidates are non-empty")
    }

    fn name(&self) -> &'static str {
        "terminal-first"
    }
}

/// The standard battery of schedulers used by correctness tests: FIFO, LIFO, both
/// adversaries and `random_count` seeded random schedules derived from `seed`.
pub fn standard_battery(seed: u64, random_count: usize) -> Vec<Box<dyn Scheduler>> {
    let mut battery: Vec<Box<dyn Scheduler>> = vec![
        Box::new(FifoScheduler::new()),
        Box::new(LifoScheduler::new()),
        Box::new(TerminalLastScheduler::new()),
        Box::new(TerminalFirstScheduler::new()),
    ];
    for i in 0..random_count {
        battery.push(Box::new(RandomScheduler::seeded(seed.wrapping_add(i as u64))));
    }
    battery
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidates() -> Vec<PendingEdge> {
        vec![
            PendingEdge { edge: EdgeId(0), head_seq: 5, queue_len: 1, into_terminal: false },
            PendingEdge { edge: EdgeId(1), head_seq: 2, queue_len: 2, into_terminal: true },
            PendingEdge { edge: EdgeId(2), head_seq: 9, queue_len: 1, into_terminal: false },
        ]
    }

    #[test]
    fn fifo_picks_oldest() {
        assert_eq!(FifoScheduler::new().pick(&candidates()), 1);
    }

    #[test]
    fn lifo_picks_newest() {
        assert_eq!(LifoScheduler::new().pick(&candidates()), 2);
    }

    #[test]
    fn terminal_last_avoids_terminal_edges() {
        assert_eq!(TerminalLastScheduler::new().pick(&candidates()), 0);
        // If only terminal edges are pending it must still pick one.
        let only_terminal = vec![PendingEdge {
            edge: EdgeId(3),
            head_seq: 1,
            queue_len: 1,
            into_terminal: true,
        }];
        assert_eq!(TerminalLastScheduler::new().pick(&only_terminal), 0);
    }

    #[test]
    fn terminal_first_prefers_terminal_edges() {
        assert_eq!(TerminalFirstScheduler::new().pick(&candidates()), 1);
    }

    #[test]
    fn random_is_reproducible_and_in_range() {
        let cands = candidates();
        let picks_a: Vec<usize> = {
            let mut s = RandomScheduler::seeded(3);
            (0..20).map(|_| s.pick(&cands)).collect()
        };
        let picks_b: Vec<usize> = {
            let mut s = RandomScheduler::seeded(3);
            (0..20).map(|_| s.pick(&cands)).collect()
        };
        assert_eq!(picks_a, picks_b);
        assert!(picks_a.iter().all(|&p| p < cands.len()));
    }

    #[test]
    fn battery_has_expected_size_and_names() {
        let battery = standard_battery(1, 3);
        assert_eq!(battery.len(), 7);
        let names: Vec<&str> = battery.iter().map(|s| s.name()).collect();
        assert!(names.contains(&"fifo"));
        assert!(names.contains(&"terminal-last"));
    }
}
