//! The pooled message arena: every in-flight message of a run in one slab.
//!
//! The engine's first queue representation was a *queue forest* — one
//! `VecDeque<(u64, M)>` per edge (retained verbatim as
//! [`crate::reference::run_queue_forest`]). That layout allocates per edge,
//! scatters queue storage across the heap, and leaves most of it cold: in the
//! paper's protocols the vast majority of edges hold zero or one message at any
//! instant, while the engine touches a different edge on every delivery.
//! [`MessageArena`] replaces the forest with a single slab of message slots
//! plus intrusive per-edge FIFO links, so all queue bookkeeping lives in a few
//! contiguous arrays.
//!
//! # Memory layout contract
//!
//! This section is the arena's analogue of the `IntervalUnion` copy-on-write
//! docs in `anet-num`: the invariants that everything touching the engine's
//! hot state may rely on.
//!
//! * **One slab, intrusive links.** All payloads live in `slots`, a single
//!   `Vec` of `(seq, next, payload)` slots. A per-edge FIFO is the chain
//!   `heads[e] → slots[·].next → … → tails[e]`; edges own no storage of their
//!   own beyond the three `u32` cursors (`heads`, `tails`, `lens`). The
//!   sentinel `u32::MAX` terminates every chain.
//! * **Slot recycling.** Popping or removing a message pushes its slot index
//!   onto a free list; the next push reuses the most recently freed slot
//!   before growing the slab. The slab therefore never shrinks, and its high
//!   -water mark is the maximum number of *simultaneously* in-flight messages
//!   — not the total number of sends (a flood that sends 2 million messages
//!   but keeps ≤ depth·arity in flight occupies only that many slots).
//! * **Moves, not clones.** Payloads enter by value and leave by value
//!   (`Option::take`); the arena never clones a message. The engine's only
//!   payload clone remains the optional trace event, exactly as in the queue
//!   forest (pinned by `trace_clones_share_arc_payloads_end_to_end`).
//! * **No aliasing.** A slot is reachable from exactly one place at any time:
//!   either one edge chain (payload present) or the free list (payload
//!   `None`). The crate is `#![forbid(unsafe_code)]`, so this is a logical
//!   invariant for readers, not a soundness requirement.
//! * **FIFO semantics are bit-for-bit the `VecDeque` forest's.** `push_back`,
//!   `pop_front`, `head_seq` and positional `remove_at` (the fault adversary's
//!   reorder path) observe and mutate the logical queue exactly as the
//!   `VecDeque` code did — the engine differential suite pins the two engines
//!   to identical traces, metrics, delivery orders and step logs. `remove_at`
//!   walks the chain and is O(position); it only runs on the adversarial
//!   reorder path, never on the reliable hot path.

/// The sentinel terminating every slot chain (and marking empty edges).
const NIL: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Slot<M> {
    /// Global send sequence number of the queued message.
    seq: u64,
    /// Next slot in this edge's FIFO chain, or [`NIL`].
    next: u32,
    /// The payload; `None` exactly while the slot sits on the free list.
    payload: Option<M>,
}

/// A slab-backed forest of per-edge FIFO queues. See the [module
/// docs](self) for the memory layout contract.
#[derive(Debug, Clone)]
pub struct MessageArena<M> {
    slots: Vec<Slot<M>>,
    free: Vec<u32>,
    heads: Vec<u32>,
    tails: Vec<u32>,
    lens: Vec<u32>,
}

impl<M> MessageArena<M> {
    /// An arena for `edge_count` edges with an empty slab.
    pub fn new(edge_count: usize) -> Self {
        Self::with_slot_capacity(edge_count, 0)
    }

    /// An arena for `edge_count` edges with room for `slots` in-flight
    /// messages before the slab grows.
    pub fn with_slot_capacity(edge_count: usize, slots: usize) -> Self {
        assert!(
            u32::try_from(edge_count).is_ok(),
            "edge count exceeds the u32 arena layout"
        );
        MessageArena {
            slots: Vec::with_capacity(slots),
            free: Vec::new(),
            heads: vec![NIL; edge_count],
            tails: vec![NIL; edge_count],
            lens: vec![0; edge_count],
        }
    }

    /// Number of messages queued on `edge`.
    pub fn len(&self, edge: usize) -> usize {
        self.lens[edge] as usize
    }

    /// Whether `edge` has no queued message.
    pub fn is_empty(&self, edge: usize) -> bool {
        self.lens[edge] == 0
    }

    /// Sequence number of the head message of `edge`, if any.
    pub fn head_seq(&self, edge: usize) -> Option<u64> {
        match self.heads[edge] {
            NIL => None,
            h => Some(self.slots[h as usize].seq),
        }
    }

    /// Appends `(seq, message)` to the tail of `edge`'s FIFO. Returns whether
    /// the edge was empty before the push (i.e. this message is its new head).
    pub fn push_back(&mut self, edge: usize, seq: u64, message: M) -> bool {
        let slot = match self.free.pop() {
            Some(i) => {
                let s = &mut self.slots[i as usize];
                s.seq = seq;
                s.next = NIL;
                s.payload = Some(message);
                i
            }
            None => {
                assert!(
                    u32::try_from(self.slots.len()).is_ok(),
                    "in-flight message count exceeds the u32 arena layout"
                );
                self.slots.push(Slot {
                    seq,
                    next: NIL,
                    payload: Some(message),
                });
                (self.slots.len() - 1) as u32
            }
        };
        let was_empty = self.heads[edge] == NIL;
        if was_empty {
            self.heads[edge] = slot;
        } else {
            self.slots[self.tails[edge] as usize].next = slot;
        }
        self.tails[edge] = slot;
        self.lens[edge] += 1;
        was_empty
    }

    /// Removes and returns the head of `edge`'s FIFO.
    pub fn pop_front(&mut self, edge: usize) -> Option<(u64, M)> {
        self.remove_at(edge, 0)
    }

    /// Removes and returns the message at `index` (0 = head) of `edge`'s FIFO
    /// — the fault adversary's reorder path. O(`index`) chain walk.
    ///
    /// # Panics
    ///
    /// Panics if `index > 0` but out of range (matching
    /// `VecDeque::remove(..).expect(..)` in the engines; `index == 0` on an
    /// empty edge returns `None`).
    pub fn remove_at(&mut self, edge: usize, index: usize) -> Option<(u64, M)> {
        let mut prev = NIL;
        let mut cur = self.heads[edge];
        if cur == NIL {
            assert!(index == 0, "reorder index beyond queue length");
            return None;
        }
        for _ in 0..index {
            prev = cur;
            cur = self.slots[cur as usize].next;
            assert!(cur != NIL, "reorder index beyond queue length");
        }
        let slot = &mut self.slots[cur as usize];
        let seq = slot.seq;
        let message = slot.payload.take().expect("chained slot holds a payload");
        let next = slot.next;
        if prev == NIL {
            self.heads[edge] = next;
        } else {
            self.slots[prev as usize].next = next;
        }
        if next == NIL {
            self.tails[edge] = prev;
        }
        self.lens[edge] -= 1;
        self.free.push(cur);
        Some((seq, message))
    }

    /// Capacity high-water mark: slots ever allocated (occupied + free).
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    #[test]
    fn fifo_order_and_head_reporting() {
        let mut a: MessageArena<&str> = MessageArena::new(3);
        assert!(a.is_empty(1));
        assert_eq!(a.head_seq(1), None);
        assert!(a.push_back(1, 10, "x"));
        assert!(!a.push_back(1, 11, "y"));
        assert!(!a.push_back(1, 12, "z"));
        assert!(a.push_back(2, 13, "w"));
        assert_eq!(a.len(1), 3);
        assert_eq!(a.head_seq(1), Some(10));
        assert_eq!(a.pop_front(1), Some((10, "x")));
        assert_eq!(a.head_seq(1), Some(11));
        assert_eq!(a.pop_front(1), Some((11, "y")));
        assert_eq!(a.pop_front(1), Some((12, "z")));
        assert_eq!(a.pop_front(1), None);
        assert!(a.is_empty(1));
        // Edge 2 was untouched by edge 1's traffic.
        assert_eq!(a.pop_front(2), Some((13, "w")));
    }

    #[test]
    fn slots_are_recycled_not_leaked() {
        let mut a: MessageArena<u64> = MessageArena::new(1);
        for round in 0..100u64 {
            a.push_back(0, round, round);
            assert_eq!(a.pop_front(0), Some((round, round)));
        }
        // 100 sends, but never more than one in flight: one slot total.
        assert_eq!(a.slot_count(), 1);
    }

    #[test]
    fn remove_at_matches_vecdeque_semantics() {
        // Drive both representations through the same operation sequence.
        let mut arena: MessageArena<u64> = MessageArena::new(2);
        let mut deques: Vec<VecDeque<(u64, u64)>> = vec![VecDeque::new(), VecDeque::new()];
        let mut seq = 0u64;
        let ops: Vec<(usize, usize)> = vec![
            // (edge, removals-at-index after a burst of pushes)
            (0, 1),
            (1, 0),
            (0, 2),
            (0, 0),
            (1, 3),
        ];
        for (edge, idx) in ops {
            for _ in 0..4 {
                arena.push_back(edge, seq, seq * 7);
                deques[edge].push_back((seq, seq * 7));
                seq += 1;
            }
            let idx = idx.min(deques[edge].len() - 1);
            assert_eq!(arena.remove_at(edge, idx), deques[edge].remove(idx));
            assert_eq!(arena.len(edge), deques[edge].len());
            assert_eq!(arena.head_seq(edge), deques[edge].front().map(|&(s, _)| s));
        }
        // Drain both fully and compare order.
        for (edge, deque) in deques.iter_mut().enumerate() {
            while let Some(expected) = deque.pop_front() {
                assert_eq!(arena.pop_front(edge), Some(expected));
            }
            assert_eq!(arena.pop_front(edge), None);
        }
    }

    #[test]
    #[should_panic(expected = "beyond queue length")]
    fn remove_beyond_length_panics() {
        let mut a: MessageArena<u64> = MessageArena::new(1);
        a.push_back(0, 0, 0);
        let _ = a.remove_at(0, 1);
    }
}
