//! The naive full-scan reference engine.
//!
//! This is the original, specification-grade executor: on every delivery it
//! rebuilds the complete list of pending edges (an O(E) scan) and hands it to
//! [`Scheduler::pick_full_scan`]. It exists for two reasons:
//!
//! 1. **Cross-checking.** The incremental engine in [`crate::engine`] must be
//!    behaviour-preserving; the equivalence property tests run both engines with
//!    identically seeded schedulers and assert bit-identical traces, metrics and
//!    outcomes. Any divergence in the incremental bookkeeping shows up as a test
//!    failure against this reference.
//! 2. **Benchmark baseline.** The `engine_throughput` bench measures the speedup
//!    of the incremental active-edge-set core over this full scan.
//!
//! Do not use it for real workloads: a run costs O(E · deliveries).

use std::collections::VecDeque;

use anet_graph::Network;

use crate::engine::{ExecutionConfig, Outcome, RunResult};
use crate::metrics::RunMetrics;
use crate::scheduler::{PendingEdge, Scheduler, SchedulerAction};
use crate::trace::{SendEvent, Trace};
use crate::{AnonymousProtocol, NodeContext, Wire};

/// Runs `protocol` on `network` under `scheduler`, rebuilding the full candidate
/// list on every delivery and choosing via [`Scheduler::pick_full_scan`].
///
/// Semantically identical to [`crate::engine::run`]; see the [module docs](self)
/// for why it is kept.
///
/// # Panics
///
/// Panics if the protocol emits a message on an out-port that does not exist at
/// the emitting vertex — that is a bug in the protocol, not a run-time condition.
pub fn run_full_scan<P, Sch>(
    network: &Network,
    protocol: &P,
    scheduler: &mut Sch,
    config: ExecutionConfig,
) -> RunResult<P::State, P::Message>
where
    P: AnonymousProtocol,
    Sch: Scheduler + ?Sized,
{
    let graph = network.graph();
    let contexts: Vec<NodeContext> = graph
        .nodes()
        .map(|n| NodeContext::new(graph.in_degree(n), graph.out_degree(n)))
        .collect();
    let mut states: Vec<P::State> = contexts
        .iter()
        .map(|ctx| protocol.initial_state(ctx))
        .collect();

    let mut queues: Vec<VecDeque<(u64, P::Message)>> =
        (0..graph.edge_count()).map(|_| VecDeque::new()).collect();
    let mut metrics = RunMetrics::new(graph.edge_count());
    let mut trace = if config.record_trace {
        Some(Trace::new())
    } else {
        None
    };
    let mut next_seq: u64 = 0;

    let send = |from: anet_graph::NodeId,
                port: usize,
                message: P::Message,
                queues: &mut Vec<VecDeque<(u64, P::Message)>>,
                metrics: &mut RunMetrics,
                trace: &mut Option<Trace<P::Message>>,
                next_seq: &mut u64| {
        let out_edges = graph.out_edges(from);
        assert!(
            port < out_edges.len(),
            "protocol {} emitted on out-port {port} of a vertex with out-degree {}",
            protocol.name(),
            out_edges.len()
        );
        let edge = out_edges[port];
        let bits = message.wire_bits();
        metrics.record_send(edge.index(), bits);
        if let Some(t) = trace.as_mut() {
            t.push(SendEvent {
                seq: *next_seq,
                edge,
                src: from,
                dst: graph.edge_dst(edge),
                bits,
                message: message.clone(),
            });
        }
        queues[edge.index()].push_back((*next_seq, message));
        *next_seq += 1;
    };

    // σ₀: the root transmits its initial messages.
    for (port, message) in protocol.root_messages(graph.out_degree(network.root())) {
        send(
            network.root(),
            port,
            message,
            &mut queues,
            &mut metrics,
            &mut trace,
            &mut next_seq,
        );
    }

    let terminal = network.terminal();
    let mut outcome = Outcome::Quiescent;
    let mut deliveries_at_termination = None;

    // A protocol whose terminal accepts in its initial state terminates immediately.
    if protocol.should_terminate(&states[terminal.index()]) {
        outcome = Outcome::Terminated;
        deliveries_at_termination = Some(0);
        return RunResult {
            outcome,
            states,
            metrics,
            deliveries_at_termination,
            trace,
            delivery_order: None,
            step_log: None,
        };
    }

    loop {
        // The defining full scan: every pending edge, in edge-id order.
        let candidates: Vec<PendingEdge> = graph
            .edges()
            .filter_map(|e| {
                queues[e.index()].front().map(|(seq, _)| PendingEdge {
                    edge: e,
                    head_seq: *seq,
                    queue_len: queues[e.index()].len(),
                    into_terminal: graph.edge_dst(e) == terminal,
                })
            })
            .collect();
        if candidates.is_empty() {
            break;
        }
        if metrics.messages_delivered >= config.max_deliveries {
            outcome = Outcome::BudgetExhausted;
            break;
        }
        let pick = scheduler.pick_full_scan(&candidates);
        let chosen = candidates[pick];
        let dst = graph.edge_dst(chosen.edge);
        // The fault hook fires exactly as in the incremental engine, so a
        // fault adapter consumes its RNG identically on both paths.
        let queue = &mut queues[chosen.edge.index()];
        let action = scheduler.deliver_action(chosen.edge, dst, queue.len());
        let (_, message) = match action {
            SchedulerAction::Reorder(i) => {
                let idx = i.min(queue.len() - 1);
                queue.remove(idx).expect("index clamped below queue length")
            }
            _ => queue
                .pop_front()
                .expect("candidate edges have queued messages"),
        };
        if action == SchedulerAction::Duplicate {
            queue.push_back((next_seq, message.clone()));
            next_seq += 1;
            metrics.record_duplicate();
        }
        match action {
            SchedulerAction::Drop => {
                metrics.record_drop();
                continue;
            }
            SchedulerAction::NodeDown => {
                metrics.record_crashed_delivery();
                continue;
            }
            SchedulerAction::Deliver | SchedulerAction::Duplicate | SchedulerAction::Reorder(_) => {
            }
        }
        let in_port = graph.in_port(chosen.edge);
        metrics.record_delivery();

        let emitted = protocol.on_receive(
            &contexts[dst.index()],
            &mut states[dst.index()],
            in_port,
            &message,
        );
        for (port, out_message) in emitted {
            send(
                dst,
                port,
                out_message,
                &mut queues,
                &mut metrics,
                &mut trace,
                &mut next_seq,
            );
        }

        if dst == terminal && protocol.should_terminate(&states[terminal.index()]) {
            outcome = Outcome::Terminated;
            deliveries_at_termination = Some(metrics.messages_delivered);
            break;
        }
    }

    RunResult {
        outcome,
        states,
        metrics,
        deliveries_at_termination,
        trace,
        delivery_order: None,
        step_log: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run;
    use crate::scheduler::standard_battery;
    use anet_graph::generators::chain_gn;

    /// The toy flood protocol used across the engine tests.
    #[derive(Debug)]
    struct Flood {
        needed: u64,
    }

    #[derive(Debug, Clone)]
    struct FloodState {
        received: u64,
        forwarded: bool,
    }

    impl AnonymousProtocol for Flood {
        type State = FloodState;
        type Message = ();

        fn name(&self) -> &'static str {
            "flood"
        }
        fn initial_state(&self, _ctx: &NodeContext) -> FloodState {
            FloodState {
                received: 0,
                forwarded: false,
            }
        }
        fn root_messages(&self, root_out_degree: usize) -> Vec<(usize, ())> {
            (0..root_out_degree).map(|p| (p, ())).collect()
        }
        fn on_receive(
            &self,
            ctx: &NodeContext,
            state: &mut FloodState,
            _in_port: usize,
            _message: &(),
        ) -> Vec<(usize, ())> {
            state.received += 1;
            if state.forwarded {
                return Vec::new();
            }
            state.forwarded = true;
            (0..ctx.out_degree).map(|p| (p, ())).collect()
        }
        fn should_terminate(&self, terminal_state: &FloodState) -> bool {
            terminal_state.received >= self.needed
        }
    }

    #[test]
    fn both_engines_agree_on_the_chain_under_the_whole_battery() {
        let net = chain_gn(6).unwrap();
        let incremental = standard_battery(11, 3);
        let reference = standard_battery(11, 3);
        for (mut inc, mut full) in incremental.into_iter().zip(reference) {
            let a = run(
                &net,
                &Flood { needed: 6 },
                inc.as_mut(),
                ExecutionConfig::with_trace(),
            );
            let b = run_full_scan(
                &net,
                &Flood { needed: 6 },
                full.as_mut(),
                ExecutionConfig::with_trace(),
            );
            assert_eq!(a.outcome, b.outcome, "scheduler {}", inc.name());
            assert_eq!(a.metrics, b.metrics, "scheduler {}", inc.name());
            assert_eq!(
                a.deliveries_at_termination,
                b.deliveries_at_termination,
                "scheduler {}",
                inc.name()
            );
            assert_eq!(a.trace, b.trace, "scheduler {}", inc.name());
        }
    }
}
