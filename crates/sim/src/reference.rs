//! The reference engines: the naive full-scan executor and the retained
//! queue-forest executor.
//!
//! Two specification-grade engines live here, each pinning a different layer
//! of the production core in [`crate::engine`]:
//!
//! 1. **[`run_full_scan`] — the scheduling specification.** The original
//!    executor: on every delivery it rebuilds the complete list of pending
//!    edges (an O(E) scan) and hands it to [`Scheduler::pick_full_scan`]. The
//!    equivalence property tests run it against the incremental engine with
//!    identically seeded schedulers and assert bit-identical traces, metrics
//!    and outcomes, so any divergence in incremental scheduler bookkeeping
//!    shows up as a test failure. Do not use it for real workloads: a run
//!    costs O(E · deliveries).
//! 2. **[`run_queue_forest`] — the memory-layout specification.** The
//!    incremental engine exactly as it stood before the flat rewrite: one
//!    heap-allocated `VecDeque` per edge, per-delivery `Vec` returns from
//!    [`AnonymousProtocol::on_receive`], `DiGraph` pointer-chasing adjacency.
//!    Scheduling is already incremental here; only the data layout is old.
//!    The engine differential suite pins the flat core
//!    ([`crate::engine::run_with_config`]) bit-identical to this engine —
//!    traces, metrics, wire bits, delivery orders, step logs, final states —
//!    and `bench_scaling` reports the flat core's speedup over it.

use std::collections::VecDeque;

use anet_graph::Network;

use crate::engine::{ExecutionConfig, Outcome, RecoveredRun, RunConfig, RunResult};
use crate::metrics::RunMetrics;
use crate::protocol::RefloodProtocol;
use crate::scheduler::{PendingEdge, Scheduler, SchedulerAction};
use crate::trace::{SendEvent, Trace};
use crate::{AnonymousProtocol, NodeContext, Wire};

/// Runs `protocol` on `network` under `scheduler`, rebuilding the full candidate
/// list on every delivery and choosing via [`Scheduler::pick_full_scan`].
///
/// Semantically identical to [`crate::engine::run`]; see the [module docs](self)
/// for why it is kept.
///
/// # Panics
///
/// Panics if the protocol emits a message on an out-port that does not exist at
/// the emitting vertex — that is a bug in the protocol, not a run-time condition.
pub fn run_full_scan<P, Sch>(
    network: &Network,
    protocol: &P,
    scheduler: &mut Sch,
    config: ExecutionConfig,
) -> RunResult<P::State, P::Message>
where
    P: AnonymousProtocol,
    Sch: Scheduler + ?Sized,
{
    let graph = network.graph();
    let contexts: Vec<NodeContext> = graph
        .nodes()
        .map(|n| NodeContext::new(graph.in_degree(n), graph.out_degree(n)))
        .collect();
    let mut states: Vec<P::State> = contexts
        .iter()
        .map(|ctx| protocol.initial_state(ctx))
        .collect();

    let mut queues: Vec<VecDeque<(u64, P::Message)>> =
        (0..graph.edge_count()).map(|_| VecDeque::new()).collect();
    let mut metrics = RunMetrics::new(graph.edge_count());
    let mut trace = if config.record_trace {
        Some(Trace::new())
    } else {
        None
    };
    let mut next_seq: u64 = 0;

    let send = |from: anet_graph::NodeId,
                port: usize,
                message: P::Message,
                queues: &mut Vec<VecDeque<(u64, P::Message)>>,
                metrics: &mut RunMetrics,
                trace: &mut Option<Trace<P::Message>>,
                next_seq: &mut u64| {
        let out_edges = graph.out_edges(from);
        assert!(
            port < out_edges.len(),
            "protocol {} emitted on out-port {port} of a vertex with out-degree {}",
            protocol.name(),
            out_edges.len()
        );
        let edge = out_edges[port];
        let bits = message.wire_bits();
        metrics.record_send(edge.index(), bits);
        if let Some(t) = trace.as_mut() {
            t.push(SendEvent {
                seq: *next_seq,
                edge,
                src: from,
                dst: graph.edge_dst(edge),
                bits,
                message: message.clone(),
            });
        }
        queues[edge.index()].push_back((*next_seq, message));
        *next_seq += 1;
    };

    // σ₀: the root transmits its initial messages.
    for (port, message) in protocol.root_messages(graph.out_degree(network.root())) {
        send(
            network.root(),
            port,
            message,
            &mut queues,
            &mut metrics,
            &mut trace,
            &mut next_seq,
        );
    }

    let terminal = network.terminal();
    let mut outcome = Outcome::Quiescent;
    let mut deliveries_at_termination = None;

    // A protocol whose terminal accepts in its initial state terminates immediately.
    if protocol.should_terminate(&states[terminal.index()]) {
        outcome = Outcome::Terminated;
        deliveries_at_termination = Some(0);
        return RunResult {
            outcome,
            states,
            metrics,
            deliveries_at_termination,
            trace,
            delivery_order: None,
            step_log: None,
        };
    }

    loop {
        // The defining full scan: every pending edge, in edge-id order.
        let candidates: Vec<PendingEdge> = graph
            .edges()
            .filter_map(|e| {
                queues[e.index()].front().map(|(seq, _)| PendingEdge {
                    edge: e,
                    head_seq: *seq,
                    queue_len: queues[e.index()].len(),
                    into_terminal: graph.edge_dst(e) == terminal,
                })
            })
            .collect();
        if candidates.is_empty() {
            break;
        }
        if metrics.messages_delivered >= config.max_deliveries {
            outcome = Outcome::BudgetExhausted;
            break;
        }
        let pick = scheduler.pick_full_scan(&candidates);
        let chosen = candidates[pick];
        let dst = graph.edge_dst(chosen.edge);
        // The fault hook fires exactly as in the incremental engine, so a
        // fault adapter consumes its RNG identically on both paths.
        let queue = &mut queues[chosen.edge.index()];
        let action = scheduler.deliver_action(chosen.edge, dst, queue.len());
        let (_, message) = match action {
            SchedulerAction::Reorder(i) => {
                let idx = i.min(queue.len() - 1);
                queue.remove(idx).expect("index clamped below queue length")
            }
            _ => queue
                .pop_front()
                .expect("candidate edges have queued messages"),
        };
        if action == SchedulerAction::Duplicate {
            queue.push_back((next_seq, message.clone()));
            next_seq += 1;
            metrics.record_duplicate();
        }
        match action {
            SchedulerAction::Drop => {
                metrics.record_drop();
                continue;
            }
            SchedulerAction::NodeDown => {
                metrics.record_crashed_delivery();
                continue;
            }
            SchedulerAction::Deliver | SchedulerAction::Duplicate | SchedulerAction::Reorder(_) => {
            }
        }
        let in_port = graph.in_port(chosen.edge);
        metrics.record_delivery();

        let emitted = protocol.on_receive(
            &contexts[dst.index()],
            &mut states[dst.index()],
            in_port,
            &message,
        );
        for (port, out_message) in emitted {
            send(
                dst,
                port,
                out_message,
                &mut queues,
                &mut metrics,
                &mut trace,
                &mut next_seq,
            );
        }

        if dst == terminal && protocol.should_terminate(&states[terminal.index()]) {
            outcome = Outcome::Terminated;
            deliveries_at_termination = Some(metrics.messages_delivered);
            break;
        }
    }

    RunResult {
        outcome,
        states,
        metrics,
        deliveries_at_termination,
        trace,
        delivery_order: None,
        step_log: None,
    }
}

/// Runs `protocol` through the retained queue-forest engine (see the [module
/// docs](self), item 2): incremental scheduling over per-edge `VecDeque`s.
///
/// Behaviourally identical to [`crate::engine::run_with_config`] — the engine
/// differential suite pins the two bit-for-bit.
///
/// # Panics
///
/// Panics under the same conditions as [`crate::engine::run`].
pub fn run_queue_forest<P, Sch>(
    network: &Network,
    protocol: &P,
    scheduler: &mut Sch,
    run_config: RunConfig,
) -> RunResult<P::State, P::Message>
where
    P: AnonymousProtocol,
    Sch: Scheduler + ?Sized,
{
    run_queue_forest_corrupted(network, protocol, scheduler, run_config, |_| {})
}

/// [`run_queue_forest`] with the state-corruption hook of
/// [`crate::engine::run_corrupted`].
///
/// # Panics
///
/// Panics under the same conditions as [`crate::engine::run`].
pub fn run_queue_forest_corrupted<P, Sch, F>(
    network: &Network,
    protocol: &P,
    scheduler: &mut Sch,
    run_config: RunConfig,
    corrupt: F,
) -> RunResult<P::State, P::Message>
where
    P: AnonymousProtocol,
    Sch: Scheduler + ?Sized,
    F: FnOnce(&mut [P::State]),
{
    run_queue_forest_engine(
        network,
        protocol,
        scheduler,
        run_config,
        corrupt,
        0,
        |_, _| Vec::new(),
    )
    .0
}

/// [`run_queue_forest`] with the bounded re-flood retry of
/// [`crate::engine::run_recovering`].
///
/// # Panics
///
/// Panics under the same conditions as [`crate::engine::run`].
pub fn run_queue_forest_recovering<P, Sch>(
    network: &Network,
    protocol: &P,
    scheduler: &mut Sch,
    run_config: RunConfig,
    retry_budget: u32,
) -> RecoveredRun<P::State, P::Message>
where
    P: RefloodProtocol,
    Sch: Scheduler + ?Sized,
{
    let (result, reflood_rounds, reflood_sends, reflood_bits) = run_queue_forest_engine(
        network,
        protocol,
        scheduler,
        run_config,
        |_| {},
        retry_budget,
        |ctx, state| protocol.reflood(ctx, state),
    );
    RecoveredRun {
        result,
        reflood_rounds,
        reflood_sends,
        reflood_bits,
    }
}

/// The queue-forest engine loop, retained verbatim from the pre-flat
/// `crate::engine::run_engine`: corruption hook, optional re-flood rounds, and
/// incremental delivery over one `VecDeque` per edge. Returns the run plus
/// `(rounds, sends, bits)` re-flood accounting.
fn run_queue_forest_engine<P, Sch, F, R>(
    network: &Network,
    protocol: &P,
    scheduler: &mut Sch,
    run_config: RunConfig,
    corrupt: F,
    retry_budget: u32,
    mut reflood: R,
) -> (RunResult<P::State, P::Message>, u32, u64, u64)
where
    P: AnonymousProtocol,
    Sch: Scheduler + ?Sized,
    F: FnOnce(&mut [P::State]),
    R: FnMut(&NodeContext, &P::State) -> Vec<(usize, P::Message)>,
{
    let config = run_config.execution;
    let mut delivery_order = if run_config.record_delivery_order {
        Some(Vec::new())
    } else {
        None
    };
    let mut step_log = if run_config.record_delivery_order {
        Some(Vec::new())
    } else {
        None
    };
    let graph = network.graph();
    let terminal = network.terminal();
    let contexts: Vec<NodeContext> = graph
        .nodes()
        .map(|n| NodeContext::new(graph.in_degree(n), graph.out_degree(n)))
        .collect();
    let mut states: Vec<P::State> = contexts
        .iter()
        .map(|ctx| protocol.initial_state(ctx))
        .collect();
    corrupt(&mut states);

    // One FIFO queue per edge; messages are moved, never cloned, on the
    // delivery path (the only clone is into the optional trace).
    let mut queues: Vec<VecDeque<(u64, P::Message)>> =
        (0..graph.edge_count()).map(|_| VecDeque::new()).collect();
    let mut metrics = RunMetrics::new(graph.edge_count());
    let mut trace = if config.record_trace {
        Some(Trace::new())
    } else {
        None
    };
    let mut next_seq: u64 = 0;
    let mut in_flight: usize = 0;

    scheduler.begin_run(graph.edge_count());

    let send = |from: anet_graph::NodeId,
                port: usize,
                message: P::Message,
                queues: &mut Vec<VecDeque<(u64, P::Message)>>,
                scheduler: &mut Sch,
                in_flight: &mut usize,
                metrics: &mut RunMetrics,
                trace: &mut Option<Trace<P::Message>>,
                next_seq: &mut u64| {
        let out_edges = graph.out_edges(from);
        assert!(
            port < out_edges.len(),
            "protocol {} emitted on out-port {port} of a vertex with out-degree {}",
            protocol.name(),
            out_edges.len()
        );
        let edge = out_edges[port];
        let bits = message.wire_bits();
        metrics.record_send(edge.index(), bits);
        if let Some(t) = trace.as_mut() {
            t.push(SendEvent {
                seq: *next_seq,
                edge,
                src: from,
                dst: graph.edge_dst(edge),
                bits,
                message: message.clone(),
            });
        }
        let queue = &mut queues[edge.index()];
        if queue.is_empty() {
            // The edge turns active and this message becomes its head.
            scheduler.on_head(edge, *next_seq, graph.edge_dst(edge) == terminal);
        }
        queue.push_back((*next_seq, message));
        *in_flight += 1;
        *next_seq += 1;
    };

    // σ₀: the root transmits its initial messages.
    for (port, message) in protocol.root_messages(graph.out_degree(network.root())) {
        send(
            network.root(),
            port,
            message,
            &mut queues,
            scheduler,
            &mut in_flight,
            &mut metrics,
            &mut trace,
            &mut next_seq,
        );
    }

    let mut outcome = Outcome::Quiescent;
    let mut deliveries_at_termination = None;

    // A protocol whose terminal accepts in its initial state terminates immediately.
    if protocol.should_terminate(&states[terminal.index()]) {
        outcome = Outcome::Terminated;
        deliveries_at_termination = Some(0);
        return (
            RunResult {
                outcome,
                states,
                metrics,
                deliveries_at_termination,
                trace,
                delivery_order,
                step_log,
            },
            0,
            0,
            0,
        );
    }

    let mut reflood_rounds: u32 = 0;
    let mut reflood_sends: u64 = 0;
    let mut reflood_bits: u64 = 0;

    loop {
        if in_flight == 0 {
            // Drained. A re-flood round fires only if the adversary actually
            // destroyed traffic (so reliable runs stay bit-identical to the
            // pristine path) and the retry budget has rounds left (so total
            // loss still starves detectably instead of hanging).
            if reflood_rounds >= retry_budget || metrics.messages_lost() == 0 {
                break;
            }
            reflood_rounds += 1;
            let sends_before = metrics.messages_sent;
            let bits_before = metrics.total_bits;
            // The root re-transmits σ₀ …
            for (port, message) in protocol.root_messages(graph.out_degree(network.root())) {
                send(
                    network.root(),
                    port,
                    message,
                    &mut queues,
                    scheduler,
                    &mut in_flight,
                    &mut metrics,
                    &mut trace,
                    &mut next_seq,
                );
            }
            // … then every vertex re-sends its frontier, in node-id order
            // (deterministic on the canonical topology). The root is included:
            // in a cyclic network it receives messages like any other vertex,
            // and its frontier is separate from σ₀.
            for node in graph.nodes() {
                for (port, message) in reflood(&contexts[node.index()], &states[node.index()]) {
                    send(
                        node,
                        port,
                        message,
                        &mut queues,
                        scheduler,
                        &mut in_flight,
                        &mut metrics,
                        &mut trace,
                        &mut next_seq,
                    );
                }
            }
            reflood_sends += metrics.messages_sent - sends_before;
            reflood_bits += metrics.total_bits - bits_before;
            if in_flight == 0 {
                // Nothing to re-send: the run is starved for good.
                break;
            }
            continue;
        }
        if metrics.messages_delivered >= config.max_deliveries {
            outcome = Outcome::BudgetExhausted;
            break;
        }
        let edge = scheduler.next_edge();
        let dst = graph.edge_dst(edge);
        let queue = &mut queues[edge.index()];
        assert!(
            !queue.is_empty(),
            "scheduler {} chose edge {edge:?} which has no queued message",
            scheduler.name()
        );
        let action = scheduler.deliver_action(edge, dst, queue.len());
        if let Some(log) = step_log.as_mut() {
            log.push((edge, action));
        }
        let (_, message) = match action {
            // Deliver a mid-queue message instead of the head (clamped).
            SchedulerAction::Reorder(i) => {
                let idx = i.min(queue.len() - 1);
                queue.remove(idx).expect("index clamped below queue length")
            }
            _ => queue.pop_front().expect("emptiness asserted above"),
        };
        in_flight -= 1;
        if action == SchedulerAction::Duplicate {
            // The copy is an adversary artifact, not a protocol send: it gets
            // a fresh sequence number (head heaps rely on uniqueness) but no
            // trace event and no wire bits.
            queue.push_back((next_seq, message.clone()));
            next_seq += 1;
            in_flight += 1;
            metrics.record_duplicate();
        }
        // Report the edge's new state before the protocol reacts, so a
        // re-activating send during `on_receive` observes a consistent queue.
        match queue.front() {
            Some(&(seq, _)) => scheduler.on_head(edge, seq, dst == terminal),
            None => scheduler.on_idle(edge),
        }
        match action {
            SchedulerAction::Drop => {
                metrics.record_drop();
                continue;
            }
            SchedulerAction::NodeDown => {
                metrics.record_crashed_delivery();
                continue;
            }
            SchedulerAction::Deliver | SchedulerAction::Duplicate | SchedulerAction::Reorder(_) => {
            }
        }
        if let Some(order) = delivery_order.as_mut() {
            order.push(edge);
        }
        let in_port = graph.in_port(edge);
        metrics.record_delivery();

        let emitted = protocol.on_receive(
            &contexts[dst.index()],
            &mut states[dst.index()],
            in_port,
            &message,
        );
        for (port, out_message) in emitted {
            send(
                dst,
                port,
                out_message,
                &mut queues,
                scheduler,
                &mut in_flight,
                &mut metrics,
                &mut trace,
                &mut next_seq,
            );
        }

        if dst == terminal && protocol.should_terminate(&states[terminal.index()]) {
            outcome = Outcome::Terminated;
            deliveries_at_termination = Some(metrics.messages_delivered);
            break;
        }
    }

    (
        RunResult {
            outcome,
            states,
            metrics,
            deliveries_at_termination,
            trace,
            delivery_order,
            step_log,
        },
        reflood_rounds,
        reflood_sends,
        reflood_bits,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run;
    use crate::scheduler::standard_battery;
    use anet_graph::generators::chain_gn;

    /// The toy flood protocol used across the engine tests.
    #[derive(Debug)]
    struct Flood {
        needed: u64,
    }

    #[derive(Debug, Clone)]
    struct FloodState {
        received: u64,
        forwarded: bool,
    }

    impl AnonymousProtocol for Flood {
        type State = FloodState;
        type Message = ();

        fn name(&self) -> &'static str {
            "flood"
        }
        fn initial_state(&self, _ctx: &NodeContext) -> FloodState {
            FloodState {
                received: 0,
                forwarded: false,
            }
        }
        fn root_messages(&self, root_out_degree: usize) -> Vec<(usize, ())> {
            (0..root_out_degree).map(|p| (p, ())).collect()
        }
        fn on_receive(
            &self,
            ctx: &NodeContext,
            state: &mut FloodState,
            _in_port: usize,
            _message: &(),
        ) -> Vec<(usize, ())> {
            state.received += 1;
            if state.forwarded {
                return Vec::new();
            }
            state.forwarded = true;
            (0..ctx.out_degree).map(|p| (p, ())).collect()
        }
        fn should_terminate(&self, terminal_state: &FloodState) -> bool {
            terminal_state.received >= self.needed
        }
    }

    #[test]
    fn both_engines_agree_on_the_chain_under_the_whole_battery() {
        let net = chain_gn(6).unwrap();
        let incremental = standard_battery(11, 3);
        let reference = standard_battery(11, 3);
        for (mut inc, mut full) in incremental.into_iter().zip(reference) {
            let a = run(
                &net,
                &Flood { needed: 6 },
                inc.as_mut(),
                ExecutionConfig::with_trace(),
            );
            let b = run_full_scan(
                &net,
                &Flood { needed: 6 },
                full.as_mut(),
                ExecutionConfig::with_trace(),
            );
            assert_eq!(a.outcome, b.outcome, "scheduler {}", inc.name());
            assert_eq!(a.metrics, b.metrics, "scheduler {}", inc.name());
            assert_eq!(
                a.deliveries_at_termination,
                b.deliveries_at_termination,
                "scheduler {}",
                inc.name()
            );
            assert_eq!(a.trace, b.trace, "scheduler {}", inc.name());
        }
    }
}
