//! Wire-size accounting for protocol messages.

/// A message that knows its own transmitted size in bits.
///
/// The paper's complexity theorems count bits on edges; every protocol message type
/// therefore reports the size of its (self-delimiting) encoding. Implementations
/// must be consistent — two equal messages report equal sizes — and should reflect
/// an encoding a real implementation could use (length-prefixed binary expansions,
/// gamma-coded exponents, …), not merely `size_of`.
pub trait Wire {
    /// Number of bits this message occupies on an edge.
    fn wire_bits(&self) -> u64;
}

impl Wire for () {
    fn wire_bits(&self) -> u64 {
        1
    }
}

impl Wire for u64 {
    fn wire_bits(&self) -> u64 {
        64
    }
}

impl<T: Wire> Wire for Option<T> {
    fn wire_bits(&self) -> u64 {
        1 + self.as_ref().map_or(0, Wire::wire_bits)
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn wire_bits(&self) -> u64 {
        self.0.wire_bits() + self.1.wire_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_sizes() {
        assert_eq!(().wire_bits(), 1);
        assert_eq!(7u64.wire_bits(), 64);
        assert_eq!((3u64, ()).wire_bits(), 65);
    }

    #[test]
    fn option_adds_presence_bit() {
        let none: Option<u64> = None;
        assert_eq!(none.wire_bits(), 1);
        assert_eq!(Some(1u64).wire_bits(), 65);
    }
}
