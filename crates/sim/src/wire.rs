//! Wire-size accounting for protocol messages, and the shared-slice message
//! payload used by flooding protocols.

use std::sync::Arc;

/// A message that knows its own transmitted size in bits.
///
/// The paper's complexity theorems count bits on edges; every protocol message type
/// therefore reports the size of its (self-delimiting) encoding. Implementations
/// must be consistent — two equal messages report equal sizes — and should reflect
/// an encoding a real implementation could use (length-prefixed binary expansions,
/// gamma-coded exponents, …), not merely `size_of`.
pub trait Wire {
    /// Number of bits this message occupies on an edge.
    fn wire_bits(&self) -> u64;
}

impl Wire for () {
    fn wire_bits(&self) -> u64 {
        1
    }
}

impl Wire for u64 {
    fn wire_bits(&self) -> u64 {
        64
    }
}

impl<T: Wire> Wire for Option<T> {
    fn wire_bits(&self) -> u64 {
        1 + self.as_ref().map_or(0, Wire::wire_bits)
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn wire_bits(&self) -> u64 {
        self.0.wire_bits() + self.1.wire_bits()
    }
}

/// A reference-counted slice payload whose clone is O(1), with a caller-supplied
/// encoded size.
///
/// Flooding protocols send the *same* batch of newly learned facts on every
/// out-port. Carrying the batch as an owned `Vec` makes each send pay a deep
/// clone; a `SharedSlice` is an `Arc<[T]>`, so the per-port (and per-trace-event)
/// clone is a reference-count bump regardless of batch size — which is why
/// [`Clone`] here deliberately does **not** require `T: Clone`.
///
/// The wire size is supplied at construction: the slice elements are typically
/// run-local names (interned ids) whose honest on-the-wire cost is the encoding
/// of the *values they name*, which only the caller can account. Constructors
/// must pass the full self-delimiting encoded size of the batch (length prefix
/// included); two batches holding equal elements are expected to report equal
/// sizes, keeping the [`Wire`] consistency contract.
#[derive(Debug)]
pub struct SharedSlice<T> {
    items: Arc<[T]>,
    encoded_bits: u64,
}

impl<T> SharedSlice<T> {
    /// Wraps `items`, declaring that the batch occupies `encoded_bits` bits on
    /// an edge (self-delimiting encoding, length prefix included).
    pub fn new(items: Vec<T>, encoded_bits: u64) -> Self {
        SharedSlice {
            items: items.into(),
            encoded_bits,
        }
    }

    /// An empty batch costing `encoded_bits` bits (the length prefix of zero).
    pub fn empty(encoded_bits: u64) -> Self {
        SharedSlice::new(Vec::new(), encoded_bits)
    }

    /// The shared elements.
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the batch holds no elements.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The declared encoded size in bits (same value [`Wire::wire_bits`] reports).
    pub fn encoded_bits(&self) -> u64 {
        self.encoded_bits
    }
}

// Manual impl: an `Arc` clone is a refcount bump, so `T: Clone` is not needed —
// this is what keeps per-delivery message clones O(1) for slice-carrying
// messages.
impl<T> Clone for SharedSlice<T> {
    fn clone(&self) -> Self {
        SharedSlice {
            items: Arc::clone(&self.items),
            encoded_bits: self.encoded_bits,
        }
    }
}

impl<T: PartialEq> PartialEq for SharedSlice<T> {
    fn eq(&self, other: &Self) -> bool {
        self.encoded_bits == other.encoded_bits && self.items == other.items
    }
}

impl<T: Eq> Eq for SharedSlice<T> {}

impl<T> std::ops::Deref for SharedSlice<T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        &self.items
    }
}

impl<T> Wire for SharedSlice<T> {
    fn wire_bits(&self) -> u64 {
        self.encoded_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_sizes() {
        assert_eq!(().wire_bits(), 1);
        assert_eq!(7u64.wire_bits(), 64);
        assert_eq!((3u64, ()).wire_bits(), 65);
    }

    #[test]
    fn option_adds_presence_bit() {
        let none: Option<u64> = None;
        assert_eq!(none.wire_bits(), 1);
        assert_eq!(Some(1u64).wire_bits(), 65);
    }

    /// A payload type that deliberately cannot be cloned: `SharedSlice` must
    /// still clone (the Arc is shared, not the elements).
    #[derive(Debug, PartialEq, Eq)]
    struct NoClone(u8);

    #[test]
    fn shared_slice_clones_without_element_clone() {
        let a = SharedSlice::new(vec![NoClone(1), NoClone(2)], 17);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(b.wire_bits(), 17);
        assert_eq!(b.items(), &[NoClone(1), NoClone(2)]);
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
        // Deref gives slice methods for free.
        assert_eq!(b.first(), Some(&NoClone(1)));
    }

    #[test]
    fn shared_slice_empty_clone_shares_the_empty_slice() {
        let empty: SharedSlice<NoClone> = SharedSlice::empty(3);
        let clone = empty.clone();
        assert!(clone.is_empty());
        assert_eq!(clone.len(), 0);
        assert_eq!(clone.wire_bits(), 3);
        assert_eq!(clone.encoded_bits(), 3);
        assert_eq!(clone.items(), &[] as &[NoClone]);
        assert_eq!(empty, clone);
        // Deref to the empty slice works on both the original and the clone.
        assert_eq!(empty.first(), None);
        assert!(clone.iter().next().is_none());
        // `empty` and `new(vec![], _)` are the same construction.
        let via_new: SharedSlice<NoClone> = SharedSlice::new(Vec::new(), 3);
        assert_eq!(via_new, clone);
    }

    #[test]
    fn shared_slice_one_element_clone_is_shared_not_deep() {
        let one = SharedSlice::new(vec![NoClone(42)], 11);
        let clone = one.clone();
        // The clone is an Arc bump: both views observe the same allocation.
        assert!(std::ptr::eq(one.items().as_ptr(), clone.items().as_ptr()));
        assert_eq!(clone.len(), 1);
        assert!(!clone.is_empty());
        assert_eq!(clone.wire_bits(), 11);
        assert_eq!(clone.first(), Some(&NoClone(42)));
        assert_eq!(clone.last(), Some(&NoClone(42)));
        assert_eq!(one, clone);
        // Dropping the original keeps the clone's contents alive.
        drop(one);
        assert_eq!(clone.items(), &[NoClone(42)]);
    }

    #[test]
    fn shared_slice_equality_covers_bits_and_items() {
        let a = SharedSlice::new(vec![1u32, 2], 9);
        assert_eq!(a, SharedSlice::new(vec![1u32, 2], 9));
        assert_ne!(a, SharedSlice::new(vec![1u32, 2], 10));
        assert_ne!(a, SharedSlice::new(vec![1u32, 3], 9));
        let empty: SharedSlice<u32> = SharedSlice::empty(1);
        assert!(empty.is_empty());
        assert_eq!(empty.encoded_bits(), 1);
        assert_eq!(empty.wire_bits(), 1);
    }
}
