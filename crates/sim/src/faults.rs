//! Fault injection: a composable adversary layer between the engine and any
//! inner [`Scheduler`].
//!
//! The paper's model quantifies over *every* delivery order, but all the
//! schedulers in [`crate::scheduler`]'s standard battery are reliable-delivery
//! adversaries. This module opens the robustness workload: a
//! [`FaultyScheduler`] wraps any scheduler and, driven by its own
//! deterministic per-run RNG and a declarative [`FaultPlan`], answers the
//! engine's [`Scheduler::deliver_action`] hook with drops, duplicates,
//! bounded within-edge reorders and per-node crash windows
//! ([`SchedulerAction`]). The inner scheduler still chooses which edge acts
//! next and observes the exact same `begin_run`/`on_head`/`on_idle` stream it
//! would under reliable delivery — faults are invisible to it.
//!
//! Two invariants keep the paper's cost currency honest:
//!
//! * **Wire bits are charged only for messages actually sent.** Drops and
//!   crash losses destroy already-paid-for messages; adversary duplicates are
//!   delivered without being re-charged (they are not protocol sends and do
//!   not appear in the trace). [`crate::metrics::RunMetrics`] counts each
//!   fault class separately (`messages_dropped`, `messages_duplicated`,
//!   `crashed_deliveries`).
//! * **A zero-fault plan is a strict no-op.** [`FaultPlan::reliable`] draws
//!   no RNG values and always answers [`SchedulerAction::Deliver`], so a
//!   wrapped scheduler produces bit-identical traces, metrics and states to
//!   the unwrapped one — pinned by `crates/sim/tests/fault_identity.rs`
//!   across the whole battery.
//!
//! Determinism: the fault RNG is reseeded from [`FaultPlan::seed`] at every
//! [`Scheduler::begin_run`], so each run of a reused scheduler sees the same
//! fault stream, and the incremental and full-scan engines (which both call
//! `deliver_action` exactly once per step) consume it identically.

use anet_graph::{EdgeId, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::scheduler::{PendingEdge, Scheduler, SchedulerAction};

/// A half-open crash window for one vertex, measured in **engine steps** (one
/// step = one [`Scheduler::deliver_action`] decision, whatever its outcome).
///
/// While a window is open, every message scheduled into `node` is consumed
/// and lost ([`SchedulerAction::NodeDown`]); when it closes, the vertex
/// resumes processing with whatever state it had — a crash–recover fault, not
/// a reset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashWindow {
    /// The vertex that is down.
    pub node: NodeId,
    /// First step (inclusive) of the outage.
    pub from: u64,
    /// First step (exclusive) after the outage; `u64::MAX` never recovers.
    pub until: u64,
}

impl CrashWindow {
    /// Whether `node` is down at `step` under this window.
    pub fn covers(&self, node: NodeId, step: u64) -> bool {
        self.node == node && self.from <= step && step < self.until
    }
}

/// A declarative, deterministic fault plan for a [`FaultyScheduler`].
///
/// Probabilities are integer percentages (0–100), mirroring the sweep spec
/// grammar's convention of keeping every canonical text form float-free. The
/// default value is [`FaultPlan::reliable`]: no faults at all.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Per-step probability (percent) of dropping the head message.
    pub drop_pct: u8,
    /// Per-step probability (percent) of duplicating the delivered message.
    pub dup_pct: u8,
    /// Within-edge reorder window: a delivered message may come from queue
    /// position `0..=reorder` instead of the head. 0 disables reordering.
    pub reorder: usize,
    /// Seed of the fault RNG, reseeded at every `begin_run`.
    pub seed: u64,
    /// Maximum number of drops over the whole run (`None` = unlimited). Once
    /// exhausted, the plan stops consuming drop draws entirely.
    pub drop_budget: Option<u64>,
    /// Crash–recover schedule, any number of windows per node.
    pub crashes: Vec<CrashWindow>,
}

impl FaultPlan {
    /// The no-fault plan: every action is [`SchedulerAction::Deliver`] and no
    /// RNG value is ever drawn.
    pub fn reliable() -> FaultPlan {
        FaultPlan::default()
    }

    /// Whether this plan can never inject a fault.
    ///
    /// A plan whose `drop_pct` is positive but whose `drop_budget` is
    /// `Some(0)` can never drop either — the budget check short-circuits the
    /// drop draw (see [`Scheduler::deliver_action`]) — so such a plan counts
    /// as reliable when no other fault class is enabled, and its action
    /// stream is identical to `drop_pct == 0` draw for draw.
    pub fn is_reliable(&self) -> bool {
        (self.drop_pct == 0 || self.drop_budget == Some(0))
            && self.dup_pct == 0
            && self.reorder == 0
            && self.crashes.is_empty()
    }

    /// Sets the drop probability (percent).
    ///
    /// # Panics
    ///
    /// Panics if `pct > 100`.
    pub fn with_drops(mut self, pct: u8) -> FaultPlan {
        assert!(pct <= 100, "drop percentage {pct} out of range");
        self.drop_pct = pct;
        self
    }

    /// Sets the duplication probability (percent).
    ///
    /// # Panics
    ///
    /// Panics if `pct > 100`.
    pub fn with_duplicates(mut self, pct: u8) -> FaultPlan {
        assert!(pct <= 100, "duplicate percentage {pct} out of range");
        self.dup_pct = pct;
        self
    }

    /// Sets the within-edge reorder window.
    pub fn with_reorder(mut self, window: usize) -> FaultPlan {
        self.reorder = window;
        self
    }

    /// Sets the fault RNG seed.
    pub fn with_seed(mut self, seed: u64) -> FaultPlan {
        self.seed = seed;
        self
    }

    /// Bounds the total number of drops.
    pub fn with_drop_budget(mut self, budget: u64) -> FaultPlan {
        self.drop_budget = Some(budget);
        self
    }

    /// Adds a crash window for `node` over steps `[from, until)`.
    pub fn with_crash(mut self, node: NodeId, from: u64, until: u64) -> FaultPlan {
        self.crashes.push(CrashWindow { node, from, until });
        self
    }
}

/// A fault-injecting adapter around any inner [`Scheduler`].
///
/// Delegates every scheduling decision (`next_edge`, `pick_full_scan`) and
/// every notification (`begin_run`, `on_head`, `on_idle`) to the inner
/// scheduler unchanged, and implements only the [`Scheduler::deliver_action`]
/// fault hook from its [`FaultPlan`]. See the [module docs](self) for the
/// determinism and accounting invariants.
#[derive(Debug, Clone)]
pub struct FaultyScheduler<S> {
    inner: S,
    plan: FaultPlan,
    rng: StdRng,
    step: u64,
    drops_left: u64,
}

impl<S: Scheduler> FaultyScheduler<S> {
    /// Wraps `inner` with `plan`.
    pub fn new(inner: S, plan: FaultPlan) -> FaultyScheduler<S> {
        let rng = StdRng::seed_from_u64(plan.seed);
        let drops_left = plan.drop_budget.unwrap_or(u64::MAX);
        FaultyScheduler {
            inner,
            plan,
            rng,
            step: 0,
            drops_left,
        }
    }

    /// The wrapped scheduler.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The fault plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Unwraps the inner scheduler.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: Scheduler> Scheduler for FaultyScheduler<S> {
    fn name(&self) -> &'static str {
        "faulty"
    }

    fn begin_run(&mut self, edge_count: usize) {
        self.inner.begin_run(edge_count);
        // Deterministic per-run fault stream: unlike the random scheduler's
        // persistent RNG, the fault RNG restarts with every run so a reused
        // scheduler injects the same faults each time.
        self.rng = StdRng::seed_from_u64(self.plan.seed);
        self.step = 0;
        self.drops_left = self.plan.drop_budget.unwrap_or(u64::MAX);
    }

    fn on_head(&mut self, edge: EdgeId, head_seq: u64, into_terminal: bool) {
        self.inner.on_head(edge, head_seq, into_terminal);
    }

    fn on_idle(&mut self, edge: EdgeId) {
        self.inner.on_idle(edge);
    }

    fn next_edge(&mut self) -> EdgeId {
        self.inner.next_edge()
    }

    fn pick_full_scan(&mut self, candidates: &[PendingEdge]) -> usize {
        self.inner.pick_full_scan(candidates)
    }

    fn deliver_action(&mut self, _edge: EdgeId, dst: NodeId, queue_len: usize) -> SchedulerAction {
        let step = self.step;
        self.step += 1;
        // Crashes are schedule-driven, not random: no RNG draw, so adding a
        // crash window never perturbs the drop/duplicate/reorder stream of
        // the steps outside it.
        if self.plan.crashes.iter().any(|w| w.covers(dst, step)) {
            return SchedulerAction::NodeDown;
        }
        // Each enabled fault class consumes exactly one draw per step;
        // disabled classes consume none, so the reliable plan draws nothing.
        if self.plan.drop_pct > 0
            && self.drops_left > 0
            && self.rng.gen_range(0..100u8) < self.plan.drop_pct
        {
            self.drops_left -= 1;
            return SchedulerAction::Drop;
        }
        if self.plan.dup_pct > 0 && self.rng.gen_range(0..100u8) < self.plan.dup_pct {
            return SchedulerAction::Duplicate;
        }
        if self.plan.reorder > 0 && queue_len > 1 {
            let k = self.rng.gen_range(0..self.plan.reorder + 1);
            if k > 0 {
                return SchedulerAction::Reorder(k);
            }
        }
        SchedulerAction::Deliver
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::FifoScheduler;

    #[test]
    fn reliable_plan_always_delivers_and_draws_nothing() {
        let mut a = FaultyScheduler::new(FifoScheduler::new(), FaultPlan::reliable());
        assert!(a.plan().is_reliable());
        a.begin_run(4);
        for step in 0..100 {
            assert_eq!(
                a.deliver_action(EdgeId(0), NodeId(1), 1 + (step as usize % 3)),
                SchedulerAction::Deliver
            );
        }
    }

    #[test]
    fn fault_stream_is_deterministic_and_reset_per_run() {
        let plan = FaultPlan::reliable()
            .with_drops(20)
            .with_duplicates(10)
            .with_reorder(3)
            .with_seed(42);
        let mut a = FaultyScheduler::new(FifoScheduler::new(), plan.clone());
        let mut b = FaultyScheduler::new(FifoScheduler::new(), plan);
        a.begin_run(8);
        b.begin_run(8);
        let run = |s: &mut FaultyScheduler<FifoScheduler>| -> Vec<SchedulerAction> {
            (0..200)
                .map(|i| s.deliver_action(EdgeId(i % 8), NodeId(1), 2 + i % 4))
                .collect()
        };
        let first_a = run(&mut a);
        assert_eq!(first_a, run(&mut b), "same plan, same stream");
        assert!(
            first_a.iter().any(|x| *x != SchedulerAction::Deliver),
            "plan with 20% drops must inject something in 200 steps"
        );
        // begin_run restarts the stream exactly.
        a.begin_run(8);
        assert_eq!(run(&mut a), first_a);
    }

    #[test]
    fn crash_windows_cover_only_their_node_and_steps() {
        let plan = FaultPlan::reliable().with_crash(NodeId(2), 3, 6);
        let mut s = FaultyScheduler::new(FifoScheduler::new(), plan);
        s.begin_run(4);
        let mut downs = Vec::new();
        for step in 0..10u64 {
            let dst = if step % 2 == 0 { NodeId(2) } else { NodeId(1) };
            if s.deliver_action(EdgeId(0), dst, 1) == SchedulerAction::NodeDown {
                downs.push(step);
            }
        }
        // Node 2 is the destination on even steps; its window is [3, 6).
        assert_eq!(downs, vec![4]);
        let w = CrashWindow {
            node: NodeId(2),
            from: 3,
            until: 6,
        };
        assert!(w.covers(NodeId(2), 3) && w.covers(NodeId(2), 5));
        assert!(!w.covers(NodeId(2), 6) && !w.covers(NodeId(1), 4));
    }

    #[test]
    fn drop_budget_caps_total_drops() {
        let plan = FaultPlan::reliable()
            .with_drops(100)
            .with_drop_budget(5)
            .with_seed(7);
        let mut s = FaultyScheduler::new(FifoScheduler::new(), plan);
        s.begin_run(4);
        let drops = (0..50)
            .filter(|_| s.deliver_action(EdgeId(0), NodeId(1), 1) == SchedulerAction::Drop)
            .count();
        assert_eq!(drops, 5);
    }

    #[test]
    fn exhausted_drop_budget_is_reliable_and_perturbs_no_other_stream() {
        // A plan that wants to drop but is never allowed to must behave,
        // draw for draw, like a plan that never wanted to drop: the budget
        // check short-circuits the drop draw, so the dup/reorder streams
        // stay aligned, and `is_reliable` agrees.
        let throttled = FaultPlan::reliable()
            .with_drops(100)
            .with_drop_budget(0)
            .with_duplicates(30)
            .with_reorder(2)
            .with_seed(13);
        let dropless = FaultPlan::reliable()
            .with_duplicates(30)
            .with_reorder(2)
            .with_seed(13);
        let mut a = FaultyScheduler::new(FifoScheduler::new(), throttled);
        let mut b = FaultyScheduler::new(FifoScheduler::new(), dropless);
        a.begin_run(4);
        b.begin_run(4);
        for i in 0..300usize {
            assert_eq!(
                a.deliver_action(EdgeId(i % 4), NodeId(1), 1 + i % 5),
                b.deliver_action(EdgeId(i % 4), NodeId(1), 1 + i % 5),
                "streams diverged at step {i}"
            );
        }
        // And with every other class disabled, the throttled plan is simply
        // reliable — while any live budget (or unlimited drops) is not.
        assert!(FaultPlan::reliable()
            .with_drops(100)
            .with_drop_budget(0)
            .is_reliable());
        assert!(!FaultPlan::reliable()
            .with_drops(100)
            .with_drop_budget(1)
            .is_reliable());
        assert!(!FaultPlan::reliable().with_drops(1).is_reliable());
    }

    #[test]
    fn empty_crash_window_covers_nothing() {
        // `from == until` is the empty half-open interval: the node is never
        // down, and the plan stays reliable in behaviour (crash checks draw
        // no RNG, so the action stream is all-Deliver).
        let w = CrashWindow {
            node: NodeId(1),
            from: 5,
            until: 5,
        };
        for step in 0..10u64 {
            assert!(!w.covers(NodeId(1), step));
        }
        let plan = FaultPlan::reliable().with_crash(NodeId(1), 5, 5);
        let mut s = FaultyScheduler::new(FifoScheduler::new(), plan);
        s.begin_run(2);
        for _ in 0..20 {
            assert_eq!(
                s.deliver_action(EdgeId(0), NodeId(1), 1),
                SchedulerAction::Deliver
            );
        }
    }

    #[test]
    fn reorder_never_fires_on_singleton_queues() {
        let plan = FaultPlan::reliable().with_reorder(4).with_seed(9);
        let mut s = FaultyScheduler::new(FifoScheduler::new(), plan);
        s.begin_run(4);
        for _ in 0..100 {
            assert_ne!(
                std::mem::discriminant(&s.deliver_action(EdgeId(0), NodeId(1), 1)),
                std::mem::discriminant(&SchedulerAction::Reorder(0)),
                "queue_len 1 leaves nothing to reorder"
            );
        }
        let mut saw_reorder = false;
        for _ in 0..100 {
            if let SchedulerAction::Reorder(k) = s.deliver_action(EdgeId(0), NodeId(1), 5) {
                assert!((1..=4).contains(&k));
                saw_reorder = true;
            }
        }
        assert!(saw_reorder, "reorder window 4 must fire within 100 draws");
    }
}
