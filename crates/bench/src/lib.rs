//! # anet-bench — benchmark harness and table-regeneration support
//!
//! The paper is a theory paper: its "tables and figures" are the complexity claims
//! of Theorems 3.1–5.2 and the constructions in Figures 4–6. Every experiment
//! `E1`–`E9` listed in `DESIGN.md` has
//!
//! * a `table_e*` binary (in `src/bin/`) that regenerates the corresponding table
//!   of `EXPERIMENTS.md`, and
//! * a Criterion bench (in `benches/`) that tracks the wall-clock cost of the
//!   protocol runs behind it.
//!
//! This library holds the pieces shared by both: deterministic workload
//! construction and plain-text table rendering.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;

use anet_graph::generators::{
    chain_gn, complete_dag, cycle_with_tail, diamond_stack, layered_dag, random_cyclic, random_dag,
    random_grounded_tree,
};
use anet_graph::Network;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The fixed seed used by every workload, so tables are reproducible run to run.
pub const WORKLOAD_SEED: u64 = 0x5EED_2007;

/// A named network workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Short name used in the table's first column.
    pub name: String,
    /// The network itself.
    pub network: Network,
}

/// Grounded-tree workloads for E1: the chain family plus random grounded trees of
/// growing size.
pub fn grounded_tree_workloads(sizes: &[usize]) -> Vec<Workload> {
    let mut rng = StdRng::seed_from_u64(WORKLOAD_SEED);
    let mut out = Vec::new();
    for &n in sizes {
        out.push(Workload {
            name: format!("chain-gn/{n}"),
            network: chain_gn(n).expect("n >= 1"),
        });
        out.push(Workload {
            name: format!("random-tree/{n}"),
            network: random_grounded_tree(&mut rng, n, 4, 0.3).expect("valid parameters"),
        });
    }
    out
}

/// DAG workloads for E3: diamond stacks and layered random DAGs.
pub fn dag_workloads(sizes: &[usize]) -> Vec<Workload> {
    let mut rng = StdRng::seed_from_u64(WORKLOAD_SEED ^ 0x3);
    let mut out = Vec::new();
    for &n in sizes {
        out.push(Workload {
            name: format!("diamond-stack/{n}"),
            network: diamond_stack(n).expect("n >= 1"),
        });
        out.push(Workload {
            name: format!("layered-dag/{n}"),
            network: layered_dag(&mut rng, n.max(1), 4, 2).expect("valid parameters"),
        });
        out.push(Workload {
            name: format!("random-dag/{n}"),
            network: random_dag(&mut rng, n, 0.15).expect("valid parameters"),
        });
    }
    out
}

/// General (cyclic) workloads for E5/E6/E8.
pub fn cyclic_workloads(sizes: &[usize]) -> Vec<Workload> {
    let mut rng = StdRng::seed_from_u64(WORKLOAD_SEED ^ 0x5);
    sizes
        .iter()
        .map(|&n| Workload {
            name: format!("random-cyclic/{n}"),
            network: random_cyclic(&mut rng, n, 0.1, 0.15).expect("valid parameters"),
        })
        .collect()
}

/// The record-bound topology grid used by the `mapping_flood` bench and the
/// `BENCH_mapping.json` baseline: random cyclic overlays of growing size plus
/// complete DAGs, whose record count (vertices + edges) grows quadratically —
/// the workloads where the owned-record reference's O(|known|) per-activation
/// diff dominates.
pub fn mapping_flood_workloads() -> Vec<Workload> {
    let mut rng = StdRng::seed_from_u64(WORKLOAD_SEED ^ 0x8);
    let mut out = Vec::new();
    for &n in &[10usize, 20, 40, 80] {
        out.push(Workload {
            name: format!("random-cyclic/{n}"),
            network: random_cyclic(&mut rng, n, 0.1, 0.15).expect("valid parameters"),
        });
    }
    for &n in &[8usize, 12, 16, 20] {
        out.push(Workload {
            name: format!("complete-dag/{n}"),
            network: complete_dag(n).expect("n >= 1"),
        });
    }
    out
}

/// Topology grid for the recovery-cost baseline (`BENCH_recovery.json`):
/// single-path families where one destroyed delivery starves the whole run —
/// the regime re-flood retries exist for — plus a dense DAG and a random
/// cyclic instance where redundant paths mask most losses.
pub fn recovery_workloads() -> Vec<Workload> {
    let mut rng = StdRng::seed_from_u64(WORKLOAD_SEED ^ 0xD);
    vec![
        Workload {
            name: "chain-gn/6".to_owned(),
            network: chain_gn(6).expect("n >= 1"),
        },
        Workload {
            name: "chain-gn/10".to_owned(),
            network: chain_gn(10).expect("n >= 1"),
        },
        Workload {
            name: "cycle-with-tail/7".to_owned(),
            network: cycle_with_tail(7).expect("k >= 2"),
        },
        Workload {
            name: "complete-dag/6".to_owned(),
            network: complete_dag(6).expect("n >= 1"),
        },
        Workload {
            name: "random-cyclic/12".to_owned(),
            network: random_cyclic(&mut rng, 12, 0.1, 0.15).expect("valid parameters"),
        },
    ]
}

/// Renders a plain-text table with aligned columns, in the style used by
/// `EXPERIMENTS.md`.
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!("## {title}\n\n"));
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let padded: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(0)))
            .collect();
        format!("| {} |\n", padded.join(" | "))
    };
    let header_cells: Vec<String> = headers.iter().map(|h| (*h).to_owned()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    let dashes: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    out.push_str(&fmt_row(&dashes, &widths));
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
    }
    out
}

/// Formats a float with three significant decimals for table cells.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Builds an adversarially fragmented element of `U[0, 1)`-style interval
/// algebra workloads: `count` stripes `[i·stride + offset, i·stride + offset + len)`
/// on the dyadic grid `1/2^k` (the smallest `k` that fits every stripe).
///
/// With `stride > len` the stripes are pairwise disjoint and non-adjacent, so
/// the union has exactly `count` maximal intervals — the worst case for the
/// set-algebra merges. Two interleaved stripings (`offset` 0 and 1 at
/// `stride = 2, len = 1`) merge into a single interval; at `stride = 4,
/// len = 2` they produce `count` intersection/difference fragments.
///
/// `heap_endpoints` selects endpoint representation: `false` keeps every
/// endpoint mantissa inline (≤ 64 bits), `true` widens each endpoint with 70
/// extra low-order bits so every mantissa spills to the heap `BigUint` path.
pub fn striped_union(
    count: usize,
    stride: u64,
    offset: u64,
    len: u64,
    heap_endpoints: bool,
) -> anet_num::IntervalUnion {
    use anet_num::{BigUint, Dyadic, Interval, IntervalUnion};
    assert!(stride > 0 && len > 0, "degenerate striping");
    let span = count as u64 * stride + offset + len + 1;
    let k = 64 - span.leading_zeros(); // ceil(log2(span + 1)) for span >= 1
    let endpoint = |cell: u64| -> Dyadic {
        if heap_endpoints {
            // Widen the mantissa far past a machine word while keeping the
            // stripes ordered and disjoint; the 2^65 + 1 tail keeps even the
            // cell-0 endpoint above the inline limit (and the mantissa odd).
            let widened = &(&(BigUint::from(cell) << 70) + &BigUint::pow2(65)) + &BigUint::one();
            Dyadic::from_parts(widened, k + 70)
        } else {
            Dyadic::from_u64_parts(cell, k)
        }
    };
    IntervalUnion::from_intervals((0..count as u64).map(|i| {
        let lo = i * stride + offset;
        Interval::new(endpoint(lo), endpoint(lo + len)).expect("stripe endpoints are ordered")
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use anet_graph::classify;

    #[test]
    fn workloads_are_valid_and_deterministic() {
        let a = grounded_tree_workloads(&[4, 8]);
        let b = grounded_tree_workloads(&[4, 8]);
        assert_eq!(a.len(), 4);
        for (wa, wb) in a.iter().zip(b.iter()) {
            assert_eq!(wa.name, wb.name);
            assert_eq!(wa.network.edge_count(), wb.network.edge_count());
            assert!(classify::is_grounded_tree(&wa.network), "{}", wa.name);
        }
        for w in dag_workloads(&[3, 6]) {
            assert!(classify::is_dag(w.network.graph()), "{}", w.name);
            assert!(classify::all_connected_to_terminal(&w.network));
        }
        for w in cyclic_workloads(&[10, 20]) {
            assert!(
                classify::all_connected_to_terminal(&w.network),
                "{}",
                w.name
            );
            assert!(classify::all_reachable_from_root(&w.network));
        }
    }

    #[test]
    fn striped_union_shapes_are_as_documented() {
        for heap in [false, true] {
            let evens = striped_union(100, 2, 0, 1, heap);
            let odds = striped_union(100, 2, 1, 1, heap);
            assert_eq!(evens.interval_count(), 100, "heap = {heap}");
            assert_eq!(odds.interval_count(), 100, "heap = {heap}");
            assert!(!evens.intersects(&odds), "heap = {heap}");
            // Interleaved stripes are all mutually adjacent: the union collapses
            // into one maximal interval (the adversarial all-merge case).
            assert_eq!(evens.union(&odds).interval_count(), 1, "heap = {heap}");
            let wide_a = striped_union(50, 4, 0, 2, heap);
            let wide_b = striped_union(50, 4, 1, 2, heap);
            assert_eq!(wide_a.intersection(&wide_b).interval_count(), 50);
            assert_eq!(wide_a.difference(&wide_b).interval_count(), 50);
            for iv in evens.iter() {
                assert_eq!(iv.lo().is_inline(), !heap);
                assert_eq!(iv.hi().is_inline(), !heap);
            }
        }
    }

    #[test]
    fn table_rendering_aligns_columns() {
        let table = render_table(
            "Demo",
            &["name", "value"],
            &[
                vec!["a".to_owned(), "1".to_owned()],
                vec!["long-name".to_owned(), "2".to_owned()],
            ],
        );
        assert!(table.contains("## Demo"));
        assert!(table.contains("| long-name | 2"));
        assert!(table.lines().count() >= 5);
        assert_eq!(f3(1.23456), "1.235");
    }
}
