//! # anet-bench — benchmark harness and table-regeneration support
//!
//! The paper is a theory paper: its "tables and figures" are the complexity claims
//! of Theorems 3.1–5.2 and the constructions in Figures 4–6. Every experiment
//! `E1`–`E9` listed in `DESIGN.md` has
//!
//! * a `table_e*` binary (in `src/bin/`) that regenerates the corresponding table
//!   of `EXPERIMENTS.md`, and
//! * a Criterion bench (in `benches/`) that tracks the wall-clock cost of the
//!   protocol runs behind it.
//!
//! This library holds the pieces shared by both: deterministic workload
//! construction and plain-text table rendering.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use anet_graph::generators::{
    chain_gn, diamond_stack, layered_dag, random_cyclic, random_dag, random_grounded_tree,
};
use anet_graph::Network;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The fixed seed used by every workload, so tables are reproducible run to run.
pub const WORKLOAD_SEED: u64 = 0x5EED_2007;

/// A named network workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Short name used in the table's first column.
    pub name: String,
    /// The network itself.
    pub network: Network,
}

/// Grounded-tree workloads for E1: the chain family plus random grounded trees of
/// growing size.
pub fn grounded_tree_workloads(sizes: &[usize]) -> Vec<Workload> {
    let mut rng = StdRng::seed_from_u64(WORKLOAD_SEED);
    let mut out = Vec::new();
    for &n in sizes {
        out.push(Workload {
            name: format!("chain-gn/{n}"),
            network: chain_gn(n).expect("n >= 1"),
        });
        out.push(Workload {
            name: format!("random-tree/{n}"),
            network: random_grounded_tree(&mut rng, n, 4, 0.3).expect("valid parameters"),
        });
    }
    out
}

/// DAG workloads for E3: diamond stacks and layered random DAGs.
pub fn dag_workloads(sizes: &[usize]) -> Vec<Workload> {
    let mut rng = StdRng::seed_from_u64(WORKLOAD_SEED ^ 0x3);
    let mut out = Vec::new();
    for &n in sizes {
        out.push(Workload {
            name: format!("diamond-stack/{n}"),
            network: diamond_stack(n).expect("n >= 1"),
        });
        out.push(Workload {
            name: format!("layered-dag/{n}"),
            network: layered_dag(&mut rng, n.max(1), 4, 2).expect("valid parameters"),
        });
        out.push(Workload {
            name: format!("random-dag/{n}"),
            network: random_dag(&mut rng, n, 0.15).expect("valid parameters"),
        });
    }
    out
}

/// General (cyclic) workloads for E5/E6/E8.
pub fn cyclic_workloads(sizes: &[usize]) -> Vec<Workload> {
    let mut rng = StdRng::seed_from_u64(WORKLOAD_SEED ^ 0x5);
    sizes
        .iter()
        .map(|&n| Workload {
            name: format!("random-cyclic/{n}"),
            network: random_cyclic(&mut rng, n, 0.1, 0.15).expect("valid parameters"),
        })
        .collect()
}

/// Renders a plain-text table with aligned columns, in the style used by
/// `EXPERIMENTS.md`.
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!("## {title}\n\n"));
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let padded: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(0)))
            .collect();
        format!("| {} |\n", padded.join(" | "))
    };
    let header_cells: Vec<String> = headers.iter().map(|h| (*h).to_owned()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    let dashes: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    out.push_str(&fmt_row(&dashes, &widths));
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
    }
    out
}

/// Formats a float with three significant decimals for table cells.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use anet_graph::classify;

    #[test]
    fn workloads_are_valid_and_deterministic() {
        let a = grounded_tree_workloads(&[4, 8]);
        let b = grounded_tree_workloads(&[4, 8]);
        assert_eq!(a.len(), 4);
        for (wa, wb) in a.iter().zip(b.iter()) {
            assert_eq!(wa.name, wb.name);
            assert_eq!(wa.network.edge_count(), wb.network.edge_count());
            assert!(classify::is_grounded_tree(&wa.network), "{}", wa.name);
        }
        for w in dag_workloads(&[3, 6]) {
            assert!(classify::is_dag(w.network.graph()), "{}", w.name);
            assert!(classify::all_connected_to_terminal(&w.network));
        }
        for w in cyclic_workloads(&[10, 20]) {
            assert!(
                classify::all_connected_to_terminal(&w.network),
                "{}",
                w.name
            );
            assert!(classify::all_reachable_from_root(&w.network));
        }
    }

    #[test]
    fn table_rendering_aligns_columns() {
        let table = render_table(
            "Demo",
            &["name", "value"],
            &[
                vec!["a".to_owned(), "1".to_owned()],
                vec!["long-name".to_owned(), "2".to_owned()],
            ],
        );
        assert!(table.contains("## Demo"));
        assert!(table.contains("| long-name | 2"));
        assert!(table.lines().count() >= 5);
        assert_eq!(f3(1.23456), "1.235");
    }
}
