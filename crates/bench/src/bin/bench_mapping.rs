//! Regenerates `BENCH_mapping.json`: a machine-readable baseline of full
//! topology-mapping runs — the interned-record implementation versus the
//! retained owned-record reference — over the record-bound topology grid of
//! the `mapping_flood` criterion bench.
//!
//! Usage: `cargo run --release -p anet-bench --bin bench_mapping`
//! (writes the JSON file into the current directory and echoes it to stdout).
//!
//! The generation itself lives in [`anet_bench::baseline`], shared with the
//! `bench_smoke` key-drift checker.

use anet_bench::baseline::{mapping_json, SampleConfig};

fn main() {
    let json = mapping_json(&SampleConfig::full());
    std::fs::write("BENCH_mapping.json", &json).expect("write baseline file");
    print!("{json}");
}
