//! E9 — Lemmas 3.3–3.7 / Figures 1–3: linear-cut snapshots and the surgery behind
//! the grounded-tree lower bound. Regenerates the E9 table of EXPERIMENTS.md.

use anet_bench::render_table;
use anet_core::Pow2Commodity;
use anet_graph::generators::{chain_gn, full_grounded_tree, random_grounded_tree, star_network};
use anet_lowerbounds::linear_cut::verify_cut_lemmas;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(anet_bench::WORKLOAD_SEED ^ 0x9);
    let nets = vec![
        ("chain-gn/6".to_owned(), chain_gn(6).expect("valid")),
        ("chain-gn/10".to_owned(), chain_gn(10).expect("valid")),
        ("star/8".to_owned(), star_network(8).expect("valid")),
        (
            "full-tree/h2-d3".to_owned(),
            full_grounded_tree(2, 3).expect("valid"),
        ),
        (
            "random-tree/12".to_owned(),
            random_grounded_tree(&mut rng, 12, 3, 0.5).expect("valid"),
        ),
    ];
    let mut rows = Vec::new();
    for (name, net) in &nets {
        let outcome = verify_cut_lemmas::<Pow2Commodity>(net, 1 << 14);
        rows.push(vec![
            name.clone(),
            net.edge_count().to_string(),
            outcome.cuts_examined.to_string(),
            outcome.one_message_per_edge.to_string(),
            outcome.cut_multisets_terminating.to_string(),
            outcome.no_strict_submultiset_pair.to_string(),
            outcome.auxiliary_networks_never_terminate.to_string(),
            outcome.branching_pairs_distinct.to_string(),
        ]);
    }
    print!(
        "{}",
        render_table(
            "E9 — linear-cut lemmas (3.3, 3.5, 3.7) and Theorem 3.6 surgery",
            &[
                "network",
                "|E|",
                "cuts examined",
                "1 msg/edge (L3.3)",
                "cut multisets terminating (L3.5)",
                "no strict submultiset (T3.6)",
                "t* surgery never terminates (T3.6)",
                "branching pairs distinct (L3.7)",
            ],
            &rows,
        )
    );
}
