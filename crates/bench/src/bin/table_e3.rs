//! E3 — Section 3.3: DAG broadcast upper bound (bandwidth O(|E|), total O(|E|²)).
//! Regenerates the E3 table of EXPERIMENTS.md.

use anet_bench::{dag_workloads, f3, render_table};
use anet_core::dag_broadcast::{run_dag_broadcast, ForwardingMode};
use anet_core::{Payload, Pow2Commodity};
use anet_sim::scheduler::FifoScheduler;

fn main() {
    let sizes = [4usize, 8, 16, 32, 64];
    let mut rows = Vec::new();
    for workload in dag_workloads(&sizes) {
        for mode in [ForwardingMode::Eager, ForwardingMode::WaitForAllInputs] {
            // Eager forwarding re-sends every commodity increment, so its message
            // count grows with the number of distinct root paths — exponential on
            // dense DAGs. It is reported only on the small instances; the paper's
            // one-message-per-edge behaviour is the wait-for-all mode.
            if mode == ForwardingMode::Eager && workload.network.edge_count() > 80 {
                continue;
            }
            let report = run_dag_broadcast::<Pow2Commodity>(
                &workload.network,
                Payload::empty(),
                mode,
                &mut FifoScheduler::new(),
            )
            .expect("run completes");
            assert!(report.terminated && report.all_received);
            let e = workload.network.edge_count() as f64;
            rows.push(vec![
                workload.name.clone(),
                format!("{mode:?}"),
                workload.network.edge_count().to_string(),
                report.total_bits().to_string(),
                report.bandwidth_bits().to_string(),
                report.max_message_bits().to_string(),
                f3(report.bandwidth_bits() as f64 / e),
                f3(report.total_bits() as f64 / (e * e)),
            ]);
        }
    }
    print!(
        "{}",
        render_table(
            "E3 — DAG broadcast: bandwidth O(|E|), total O(|E|^2) (Section 3.3)",
            &[
                "workload",
                "mode",
                "|E|",
                "total bits",
                "bandwidth bits",
                "max msg bits",
                "bandwidth / |E|",
                "total / |E|^2",
            ],
            &rows,
        )
    );
}
