//! E8 — Section 6: topology mapping by flooding local information. Regenerates the
//! E8 table of EXPERIMENTS.md.

use anet_bench::{cyclic_workloads, f3, render_table};
use anet_core::mapping::run_mapping;
use anet_graph::generators::{complete_dag, nested_cycles};
use anet_sim::scheduler::FifoScheduler;

fn main() {
    let sizes = [5usize, 10, 20, 40];
    let mut workloads = cyclic_workloads(&sizes);
    workloads.push(anet_bench::Workload {
        name: "complete-dag/12".to_owned(),
        network: complete_dag(12).expect("valid"),
    });
    workloads.push(anet_bench::Workload {
        name: "nested-cycles/4x5".to_owned(),
        network: nested_cycles(4, 5).expect("valid"),
    });

    let mut rows = Vec::new();
    for workload in &workloads {
        let report =
            run_mapping(&workload.network, &mut FifoScheduler::new()).expect("run completes");
        assert!(report.terminated);
        let exact = report.reconstruction_is_exact(&workload.network);
        let topo = report
            .topology
            .as_ref()
            .expect("terminated runs carry a topology");
        let e = workload.network.edge_count() as f64;
        let v = workload.network.node_count() as f64;
        rows.push(vec![
            workload.name.clone(),
            workload.network.node_count().to_string(),
            workload.network.edge_count().to_string(),
            topo.vertex_count().to_string(),
            topo.edge_count().to_string(),
            exact.to_string(),
            report.metrics.messages_sent.to_string(),
            report.metrics.total_bits.to_string(),
            f3(report.metrics.total_bits as f64 / (e * e * v)),
        ]);
    }
    print!(
        "{}",
        render_table(
            "E8 — topology mapping: exact reconstruction at the terminal (Section 6)",
            &[
                "workload",
                "|V|",
                "|E|",
                "mapped |V|",
                "mapped |E|",
                "exact",
                "messages",
                "total bits",
                "total / (|E|^2 |V|)",
            ],
            &rows,
        )
    );
}
