//! E5 — Theorems 4.2 and 4.3: general-graph broadcast complexity. Regenerates the
//! E5 table of EXPERIMENTS.md.

use anet_bench::{cyclic_workloads, render_table};
use anet_core::general_broadcast::run_general_broadcast;
use anet_core::Payload;
use anet_graph::generators::{cycle_with_tail, nested_cycles, with_stranded_vertex};
use anet_sim::scheduler::FifoScheduler;

fn main() {
    let sizes = [10usize, 20, 40, 80];
    let mut workloads = cyclic_workloads(&sizes);
    workloads.push(anet_bench::Workload {
        name: "cycle-with-tail/64".to_owned(),
        network: cycle_with_tail(64).expect("valid"),
    });
    workloads.push(anet_bench::Workload {
        name: "nested-cycles/8x8".to_owned(),
        network: nested_cycles(8, 8).expect("valid"),
    });

    let mut rows = Vec::new();
    for workload in &workloads {
        let report = run_general_broadcast(
            &workload.network,
            Payload::synthetic(64),
            &mut FifoScheduler::new(),
        )
        .expect("run completes");
        assert!(report.terminated && report.all_received);
        let e = workload.network.edge_count() as f64;
        let v = workload.network.node_count() as f64;
        let d = (workload.network.max_out_degree() as f64).max(2.0);
        let bound = e * e * v * d.log2();
        rows.push(vec![
            workload.name.clone(),
            workload.network.node_count().to_string(),
            workload.network.edge_count().to_string(),
            workload.network.max_out_degree().to_string(),
            report.metrics.messages_sent.to_string(),
            report.total_bits().to_string(),
            report.bandwidth_bits().to_string(),
            report.max_message_bits().to_string(),
            format!("{:.6}", report.total_bits() as f64 / bound),
        ]);
    }

    // Non-termination check: the same workloads with a stranded vertex must not
    // terminate (reported as a separate mini-table).
    let mut nonterm_rows = Vec::new();
    for workload in workloads.iter().take(3) {
        let stranded = with_stranded_vertex(&workload.network).expect("has internal vertices");
        let report = run_general_broadcast(&stranded, Payload::empty(), &mut FifoScheduler::new())
            .expect("run completes");
        nonterm_rows.push(vec![
            format!("{}+stranded", workload.name),
            report.terminated.to_string(),
            report.quiescent.to_string(),
        ]);
    }

    print!(
        "{}",
        render_table(
            "E5 — general-graph broadcast: total O(|E|^2 |V| log d_out) + |E||m| (Theorems 4.2, 4.3)",
            &[
                "workload",
                "|V|",
                "|E|",
                "d_out",
                "messages",
                "total bits",
                "bandwidth bits",
                "max msg bits",
                "total / (|E|^2|V|log d)",
            ],
            &rows,
        )
    );
    println!();
    print!(
        "{}",
        render_table(
            "E5b — termination refusal when a vertex is not connected to t",
            &["workload", "terminated", "quiescent"],
            &nonterm_rows,
        )
    );
}
