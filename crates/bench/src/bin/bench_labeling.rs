//! Regenerates `BENCH_labeling.json`: a machine-readable baseline of full
//! labelling and general-broadcast runs — the copy-on-write endpoint-array
//! implementations versus the retained deep-clone references — over the
//! record-bound topology grid shared with the `mapping_flood` bench.
//!
//! Usage: `cargo run --release -p anet-bench --bin bench_labeling`
//! (writes the JSON file into the current directory and echoes it to stdout).
//!
//! The generation itself lives in [`anet_bench::baseline`], shared with the
//! `bench_smoke` key-drift checker.

use anet_bench::baseline::{labeling_json, SampleConfig};

fn main() {
    let json = labeling_json(&SampleConfig::full());
    std::fs::write("BENCH_labeling.json", &json).expect("write baseline file");
    print!("{json}");
}
