//! E2 — Theorem 3.2 / Figure 5: the chain family lower bound. Regenerates the E2
//! table of EXPERIMENTS.md.

use anet_bench::{f3, render_table};
use anet_core::Pow2Commodity;
use anet_lowerbounds::chain_family::chain_family_experiment;

fn main() {
    let ns = [4usize, 8, 16, 32, 64, 128, 256, 512];
    let points = chain_family_experiment::<Pow2Commodity>(&ns, 0);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.n.to_string(),
                p.edges.to_string(),
                p.symbol_lower_bound.to_string(),
                p.stats.distinct_symbols.to_string(),
                p.stats.min_symbol_bits.to_string(),
                p.stats.total_bits.to_string(),
                p.stats.bandwidth_bits.to_string(),
                f3(p.normalized_total_bits()),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            "E2 — chain family G_n: Ω(n) distinct symbols, Ω(|E| log |E|) total bits (Theorem 3.2)",
            &[
                "n",
                "|E|",
                "symbol lower bound",
                "distinct symbols used",
                "min bits/symbol",
                "total bits",
                "bandwidth bits",
                "total / |E|log|E|",
            ],
            &rows,
        )
    );
}
