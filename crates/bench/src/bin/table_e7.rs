//! E7 — Theorem 5.2 / Figure 6: the label-length lower bound via pruning.
//! Regenerates the E7 table of EXPERIMENTS.md.

use anet_bench::{f3, render_table};
use anet_lowerbounds::pruning::pruning_experiment;

fn main() {
    let mut rows = Vec::new();
    for (height, arity, compare) in [
        (2usize, 2usize, true),
        (3, 2, true),
        (3, 3, true),
        (4, 3, true),
        (8, 4, false),
        (16, 4, false),
        (32, 4, false),
        (64, 4, false),
        (16, 8, false),
        (16, 16, false),
    ] {
        let o = pruning_experiment(height, arity, compare);
        rows.push(vec![
            height.to_string(),
            arity.to_string(),
            o.pruned_nodes.to_string(),
            o.pruned_deep_label_bits.to_string(),
            o.full_deep_label_bits
                .map(|b| b.to_string())
                .unwrap_or_else(|| "-".to_owned()),
            o.labels_match_along_path
                .map(|b| b.to_string())
                .unwrap_or_else(|| "-".to_owned()),
            f3(o.h_log_d),
            f3(o.normalized_label_bits()),
        ]);
    }
    print!(
        "{}",
        render_table(
            "E7 — pruned trees: deep label needs Ω(|V| log d_out) bits (Theorem 5.2)",
            &[
                "height h",
                "arity d",
                "pruned |V|",
                "deep label bits (pruned)",
                "deep label bits (full)",
                "labels match",
                "h log2 d",
                "label bits / (h log d)",
            ],
            &rows,
        )
    );
}
