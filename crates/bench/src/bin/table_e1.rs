//! E1 — Theorem 3.1: grounded-tree broadcast upper bound and the naive-rule
//! ablation. Regenerates the E1 table of EXPERIMENTS.md.

use anet_bench::{f3, grounded_tree_workloads, render_table};
use anet_core::tree_broadcast::run_tree_broadcast;
use anet_core::{ExactCommodity, Payload, Pow2Commodity};
use anet_sim::scheduler::FifoScheduler;

fn main() {
    let sizes = [16usize, 32, 64, 128, 256, 512];
    let payload_bits = [0u64, 64, 1024];
    let mut rows = Vec::new();
    for workload in grounded_tree_workloads(&sizes) {
        for &m in &payload_bits {
            let pow2 = run_tree_broadcast::<Pow2Commodity>(
                &workload.network,
                Payload::synthetic(m),
                &mut FifoScheduler::new(),
            )
            .expect("run completes");
            let naive = run_tree_broadcast::<ExactCommodity>(
                &workload.network,
                Payload::synthetic(m),
                &mut FifoScheduler::new(),
            )
            .expect("run completes");
            assert!(pow2.terminated && pow2.all_received);
            assert!(naive.terminated && naive.all_received);
            let e = workload.network.edge_count() as f64;
            let e_log_e = e * e.log2().max(1.0);
            rows.push(vec![
                workload.name.clone(),
                workload.network.edge_count().to_string(),
                m.to_string(),
                pow2.total_bits().to_string(),
                naive.total_bits().to_string(),
                pow2.bandwidth_bits().to_string(),
                naive.bandwidth_bits().to_string(),
                f3(pow2.total_bits() as f64 / (e_log_e + e * m as f64)),
                f3(naive.total_bits() as f64 / pow2.total_bits() as f64),
            ]);
        }
    }
    print!(
        "{}",
        render_table(
            "E1 — grounded-tree broadcast: O(|E| log |E|) + |E||m| (Theorem 3.1) and naive x/d ablation",
            &[
                "workload",
                "|E|",
                "|m| bits",
                "pow2 total bits",
                "naive total bits",
                "pow2 bandwidth",
                "naive bandwidth",
                "pow2 / (|E|log|E|+|E||m|)",
                "naive / pow2",
            ],
            &rows,
        )
    );
}
