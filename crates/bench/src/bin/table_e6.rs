//! E6 — Theorem 5.1: label assignment complexity and label lengths. Regenerates
//! the E6 table of EXPERIMENTS.md.

use anet_bench::{cyclic_workloads, f3, render_table};
use anet_core::labeling::run_labeling;
use anet_graph::generators::full_grounded_tree;
use anet_sim::scheduler::FifoScheduler;

fn main() {
    let sizes = [10usize, 20, 40, 80];
    let mut workloads = cyclic_workloads(&sizes);
    for arity in [2usize, 4, 8] {
        workloads.push(anet_bench::Workload {
            name: format!("full-tree/h3-d{arity}"),
            network: full_grounded_tree(3, arity).expect("valid"),
        });
    }

    let mut rows = Vec::new();
    for workload in &workloads {
        let report =
            run_labeling(&workload.network, &mut FifoScheduler::new()).expect("run completes");
        assert!(report.terminated && report.labels_unique);
        let v = workload.network.node_count() as f64;
        let d = (workload.network.max_out_degree() as f64).max(2.0);
        let e = workload.network.edge_count() as f64;
        rows.push(vec![
            workload.name.clone(),
            workload.network.node_count().to_string(),
            workload.network.edge_count().to_string(),
            workload.network.max_out_degree().to_string(),
            report.labels_unique.to_string(),
            report.max_label_bits.to_string(),
            f3(report.max_label_bits as f64 / (v * d.log2())),
            report.metrics.total_bits.to_string(),
            format!(
                "{:.6}",
                report.metrics.total_bits as f64 / (e * e * v * d.log2())
            ),
        ]);
    }
    print!(
        "{}",
        render_table(
            "E6 — label assignment: unique labels of O(|V| log d_out) bits (Theorem 5.1)",
            &[
                "workload",
                "|V|",
                "|E|",
                "d_out",
                "labels unique",
                "max label bits",
                "max label / (|V| log d)",
                "total bits",
                "total / (|E|^2|V|log d)",
            ],
            &rows,
        )
    );
}
