//! Regenerates `BENCH_interval_algebra.json`: a machine-readable baseline of
//! the interval-algebra fast paths versus the retained reference
//! implementations, over the same striped workloads as the
//! `interval_algebra` criterion bench.
//!
//! Usage: `cargo run --release -p anet-bench --bin bench_interval_algebra`
//! (writes the JSON file into the current directory and echoes it to stdout).
//!
//! The generation itself lives in [`anet_bench::baseline`], shared with the
//! `bench_smoke` key-drift checker.

use anet_bench::baseline::{interval_algebra_json, SampleConfig};

fn main() {
    let json = interval_algebra_json(&SampleConfig::full());
    std::fs::write("BENCH_interval_algebra.json", &json).expect("write baseline file");
    print!("{json}");
}
