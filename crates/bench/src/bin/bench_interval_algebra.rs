//! Regenerates `BENCH_interval_algebra.json`: a machine-readable baseline of
//! the interval-algebra fast paths versus the retained reference
//! implementations, over the same striped workloads as the
//! `interval_algebra` criterion bench.
//!
//! Usage: `cargo run --release -p anet-bench --bin bench_interval_algebra`
//! (writes the JSON file into the current directory and echoes it to stdout).

use std::fmt::Write as _;
use std::time::Instant;

use anet_bench::striped_union;
use anet_num::{reference, IntervalUnion};

const SIZES: &[usize] = &[10, 100, 1_000, 10_000];
const REFERENCE_DIFFERENCE_CAP: usize = 1_000;
const SAMPLES: usize = 9;

/// Median wall-clock nanoseconds per call over `SAMPLES` samples, with an
/// iteration count chosen so each sample runs for at least ~1 ms.
fn median_ns(mut f: impl FnMut()) -> u64 {
    // Calibrate the per-sample iteration count.
    let mut iters = 1u64;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let elapsed = start.elapsed();
        if elapsed.as_micros() >= 1_000 || iters >= 1 << 20 {
            break;
        }
        iters *= 2;
    }
    let mut samples: Vec<u64> = (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            (start.elapsed().as_nanos() as u64) / iters.max(1)
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

struct Record {
    op: &'static str,
    implementation: &'static str,
    endpoints: &'static str,
    intervals: usize,
    median_ns: u64,
}

fn operands(op: &str, n: usize, heap: bool) -> (IntervalUnion, IntervalUnion) {
    if op == "union" {
        (
            striped_union(n, 2, 0, 1, heap),
            striped_union(n, 2, 1, 1, heap),
        )
    } else {
        (
            striped_union(n, 4, 0, 2, heap),
            striped_union(n, 4, 1, 2, heap),
        )
    }
}

/// A binary interval-set operation.
type SetOp = fn(&IntervalUnion, &IntervalUnion) -> IntervalUnion;

fn main() {
    let ops: &[(&'static str, SetOp, SetOp)] = &[
        ("union", |a, b| a.union(b), reference::union),
        (
            "intersection",
            |a, b| a.intersection(b),
            reference::intersection,
        ),
        ("difference", |a, b| a.difference(b), reference::difference),
    ];

    let mut records: Vec<Record> = Vec::new();
    for &(op, fast, slow) in ops {
        for &n in SIZES {
            for (heap, repr) in [(false, "inline"), (true, "heap")] {
                let (a, b) = operands(op, n, heap);
                assert_eq!(fast(&a, &b), slow(&a, &b), "fast/reference divergence");
                records.push(Record {
                    op,
                    implementation: "fast",
                    endpoints: repr,
                    intervals: n,
                    median_ns: median_ns(|| {
                        std::hint::black_box(fast(&a, &b));
                    }),
                });
                if op != "difference" || n <= REFERENCE_DIFFERENCE_CAP {
                    records.push(Record {
                        op,
                        implementation: "reference",
                        endpoints: repr,
                        intervals: n,
                        median_ns: median_ns(|| {
                            std::hint::black_box(slow(&a, &b));
                        }),
                    });
                }
            }
        }
    }

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"interval_algebra\",\n");
    json.push_str("  \"unit\": \"ns_per_call_median\",\n");
    json.push_str("  \"workload\": \"striped_union fragmentation sweep (see crates/bench)\",\n");
    json.push_str("  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"op\": \"{}\", \"impl\": \"{}\", \"endpoints\": \"{}\", \"intervals\": {}, \"median_ns\": {}}}{}",
            r.op,
            r.implementation,
            r.endpoints,
            r.intervals,
            r.median_ns,
            if i + 1 < records.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n  \"speedup_reference_over_fast\": {\n");
    let mut speedups: Vec<String> = Vec::new();
    for r in records.iter().filter(|r| r.implementation == "fast") {
        if let Some(slow) = records.iter().find(|s| {
            s.implementation == "reference"
                && s.op == r.op
                && s.endpoints == r.endpoints
                && s.intervals == r.intervals
        }) {
            speedups.push(format!(
                "    \"{}/{}/{}\": {:.2}",
                r.op,
                r.endpoints,
                r.intervals,
                slow.median_ns as f64 / r.median_ns.max(1) as f64
            ));
        }
    }
    json.push_str(&speedups.join(",\n"));
    json.push_str("\n  }\n}\n");

    std::fs::write("BENCH_interval_algebra.json", &json).expect("write baseline file");
    print!("{json}");
}
