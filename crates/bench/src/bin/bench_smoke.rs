//! Baseline key-drift smoke check (CI).
//!
//! Regenerates every `BENCH_*.json` baseline in smoke mode — a single
//! iteration per benchmark, so the pass takes seconds — and compares the set
//! of benchmark keys (every `results` row minus its measured numbers) against
//! the committed baseline files. A mismatch means the bench grid changed
//! (workloads added, dropped or renamed) without the baseline being
//! regenerated, which is exactly the drift the vendored criterion shim cannot
//! catch.
//!
//! Usage: `cargo run --release -p anet-bench --bin bench_smoke` from the
//! workspace root (where the `BENCH_*.json` files live). Exits non-zero on
//! drift.

use anet_bench::baseline::{
    faults_json, interval_algebra_json, labeling_json, mapping_json, recovery_json, result_keys,
    SampleConfig,
};

fn main() {
    let smoke = SampleConfig::smoke();
    let checks: [(&str, String); 5] = [
        ("BENCH_interval_algebra.json", interval_algebra_json(&smoke)),
        ("BENCH_mapping.json", mapping_json(&smoke)),
        ("BENCH_labeling.json", labeling_json(&smoke)),
        ("BENCH_faults.json", faults_json(&smoke)),
        ("BENCH_recovery.json", recovery_json(&smoke)),
    ];

    let mut drifted = false;
    for (path, generated) in &checks {
        let committed = match std::fs::read_to_string(path) {
            Ok(contents) => contents,
            Err(err) => {
                eprintln!("FAIL {path}: cannot read committed baseline: {err}");
                drifted = true;
                continue;
            }
        };
        let expected = result_keys(generated);
        let actual = result_keys(&committed);
        if expected == actual {
            println!("ok   {path}: {} benchmark keys match", expected.len());
            continue;
        }
        drifted = true;
        eprintln!("FAIL {path}: benchmark keys drifted from the committed baseline");
        for missing in expected.difference(&actual) {
            eprintln!("  bench grid has, baseline lacks: {missing}");
        }
        for stale in actual.difference(&expected) {
            eprintln!("  baseline has, bench grid lacks: {stale}");
        }
        eprintln!(
            "  regenerate with: cargo run --release -p anet-bench --bin bench_{}",
            if path.contains("mapping") {
                "mapping"
            } else if path.contains("labeling") {
                "labeling"
            } else if path.contains("faults") {
                "faults"
            } else if path.contains("recovery") {
                "recovery"
            } else {
                "interval_algebra"
            }
        );
    }

    if drifted {
        std::process::exit(1);
    }
}
