//! Regenerates `BENCH_faults.json`: full FIFO mapping runs under the
//! fault-injection layer (`anet_sim::faults::FaultyScheduler`) versus the
//! bare scheduler, over the record-bound topology grid — the adapter's
//! zero-fault overhead plus two genuinely adversarial plans.
//!
//! Before any timing, every workload's zero-fault wrapped run is cross-checked
//! bit-identical (metrics and labels) to the bare run.
//!
//! Usage: `cargo run --release -p anet-bench --bin bench_faults`
//! (writes the JSON file into the current directory and echoes it to stdout).
//!
//! The generation itself lives in [`anet_bench::baseline`], shared with the
//! `bench_smoke` key-drift checker.

use anet_bench::baseline::{faults_json, SampleConfig};

fn main() {
    let json = faults_json(&SampleConfig::full());
    std::fs::write("BENCH_faults.json", &json).expect("write baseline file");
    print!("{json}");
}
