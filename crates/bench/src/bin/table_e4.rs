//! E4 — Theorem 3.8 / Figure 4: commodity-preserving bandwidth lower bound.
//! Regenerates the E4 table of EXPERIMENTS.md.

use anet_bench::render_table;
use anet_core::Pow2Commodity;
use anet_lowerbounds::skeleton::skeleton_experiment;

fn main() {
    let mut rows = Vec::new();
    for n in [2usize, 4, 6, 8, 10, 12, 14] {
        let outcome = skeleton_experiment::<Pow2Commodity>(n, 1 << 10);
        rows.push(vec![
            n.to_string(),
            outcome.nodes.to_string(),
            outcome.edges.to_string(),
            outcome.subsets_tested.to_string(),
            outcome.distinct_quantities.to_string(),
            outcome.all_distinct.to_string(),
            outcome.min_bits_on_collector_edge.to_string(),
            outcome.observed_collector_message_bits.to_string(),
        ]);
    }
    print!(
        "{}",
        render_table(
            "E4 — skeleton graphs: 2^n distinct collector quantities force Ω(|E|) bandwidth (Theorem 3.8)",
            &[
                "n",
                "|V|",
                "|E|",
                "subsets tested",
                "distinct quantities",
                "all distinct",
                "min bits on w->t",
                "observed bits on w->t",
            ],
            &rows,
        )
    );
}
