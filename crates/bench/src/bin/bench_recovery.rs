//! Regenerates `BENCH_recovery.json`: the recovery cost of the re-flood
//! retry variants across the drop-intensity ramp — `pristine`, `single-shot`
//! and `retry` rows per (protocol, topology, drop%) cell, FIFO delivery.
//!
//! Before any timing, every workload's reliable-plan retry run is
//! cross-checked bit-identical (outcome and full metrics) to the pristine
//! single-shot run, so the reported overhead is attributable to recovery
//! traffic and not to the wrapper.
//!
//! Usage: `cargo run --release -p anet-bench --bin bench_recovery`
//! (writes the JSON file into the current directory and echoes it to stdout).
//! With `--smoke`, generates the single-iteration structural pass to stdout
//! only — the mode the `bench_smoke` key-drift checker uses.
//!
//! The generation itself lives in [`anet_bench::baseline`], shared with the
//! `bench_smoke` key-drift checker.

use anet_bench::baseline::{recovery_json, SampleConfig};

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        print!("{}", recovery_json(&SampleConfig::smoke()));
        return;
    }
    let json = recovery_json(&SampleConfig::full());
    std::fs::write("BENCH_recovery.json", &json).expect("write baseline file");
    print!("{json}");
}
