//! Scaling baseline for the flat engine core: `BENCH_scaling.json`.
//!
//! The grid runs the full protocol battery (labelling, general broadcast,
//! topology mapping) on full grounded trees of n ∈ {10³, 10⁴, 10⁵, 10⁶}
//! nodes under a LIFO schedule, on three engines: the flat CSR + message
//! arena core, the retained queue-forest reference, and (on the cells where
//! it finishes in sensible time) the O(E · deliveries) full-scan reference.
//! Rows carry deterministic outcome and wire columns, so the smoke key diff
//! also pins run determinism across engine changes.
//!
//! Usage, from the workspace root (where `BENCH_scaling.json` lives):
//!
//! * no arguments — regenerate `BENCH_scaling.json` at full effort
//!   ([`SampleConfig::scaling`]: 5 one-run samples per cell, engines
//!   cross-checked bit-identical before timing);
//! * `--smoke` — single-run regeneration and a key diff against the
//!   committed file; exits non-zero on drift (the CI `scaling_smoke` step);
//! * `--verify-large` — no timing: pins flat vs queue-forest bit-identity
//!   (outcome, metrics, states) for all three protocols at n ≈ 10⁵.

use anet_bench::baseline::{result_keys, scaling_json, verify_scaling_large, SampleConfig};

const BASELINE: &str = "BENCH_scaling.json";

fn main() {
    let arg = std::env::args().nth(1);
    match arg.as_deref() {
        None => {
            let json = scaling_json(&SampleConfig::scaling());
            std::fs::write(BASELINE, &json).expect("write BENCH_scaling.json");
            print!("{json}");
        }
        Some("--smoke") => {
            let generated = scaling_json(&SampleConfig::smoke());
            let committed = std::fs::read_to_string(BASELINE)
                .unwrap_or_else(|err| panic!("cannot read committed {BASELINE}: {err}"));
            let expected = result_keys(&generated);
            let actual = result_keys(&committed);
            if expected == actual {
                println!("ok   {BASELINE}: {} benchmark keys match", expected.len());
                return;
            }
            eprintln!("FAIL {BASELINE}: benchmark keys drifted from the committed baseline");
            for missing in expected.difference(&actual) {
                eprintln!("  bench grid has, baseline lacks: {missing}");
            }
            for stale in actual.difference(&expected) {
                eprintln!("  baseline has, bench grid lacks: {stale}");
            }
            eprintln!("  regenerate with: cargo run --release -p anet-bench --bin bench_scaling");
            std::process::exit(1);
        }
        Some("--verify-large") => verify_scaling_large(),
        Some(other) => {
            eprintln!("unknown argument {other:?}; expected --smoke, --verify-large or nothing");
            std::process::exit(2);
        }
    }
}
