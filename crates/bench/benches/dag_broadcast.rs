//! E3 bench — DAG broadcast (Section 3.3) in both forwarding modes.

use anet_bench::dag_workloads;
use anet_core::dag_broadcast::{run_dag_broadcast, ForwardingMode};
use anet_core::{Payload, Pow2Commodity};
use anet_sim::scheduler::FifoScheduler;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_dag_broadcast(c: &mut Criterion) {
    let mut group = c.benchmark_group("dag_broadcast");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(1));
    for workload in dag_workloads(&[8, 32, 64]) {
        for (label, mode) in [
            ("eager", ForwardingMode::Eager),
            ("wait-all", ForwardingMode::WaitForAllInputs),
        ] {
            // Eager forwarding is exponential in the number of root paths; bench it
            // only on the small instances (the wait-all mode is the paper's).
            if mode == ForwardingMode::Eager && workload.network.edge_count() > 80 {
                continue;
            }
            group.bench_with_input(
                BenchmarkId::new(label, &workload.name),
                &workload,
                |b, w| {
                    b.iter(|| {
                        run_dag_broadcast::<Pow2Commodity>(
                            &w.network,
                            Payload::empty(),
                            mode,
                            &mut FifoScheduler::new(),
                        )
                        .expect("run completes")
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_dag_broadcast);
criterion_main!(benches);
