//! E2/E4/E9 bench — the lower-bound experiments: chain-family alphabet extraction,
//! skeleton subset sweeps and linear-cut lemma verification.

use anet_core::Pow2Commodity;
use anet_graph::generators::chain_gn;
use anet_lowerbounds::chain_family::chain_family_experiment;
use anet_lowerbounds::linear_cut::verify_cut_lemmas;
use anet_lowerbounds::skeleton::skeleton_experiment;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_lower_bounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("lower_bounds");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(1));

    group.bench_function("chain_family/n=64", |b| {
        b.iter(|| chain_family_experiment::<Pow2Commodity>(&[64], 0))
    });

    for n in [4usize, 8] {
        group.bench_with_input(BenchmarkId::new("skeleton", n), &n, |b, &n| {
            b.iter(|| skeleton_experiment::<Pow2Commodity>(n, 1 << n.min(8)))
        });
    }

    let chain = chain_gn(8).expect("valid");
    group.bench_function("linear_cut_lemmas/chain-8", |b| {
        b.iter(|| verify_cut_lemmas::<Pow2Commodity>(&chain, 1 << 12))
    });

    group.finish();
}

criterion_group!(benches, bench_lower_bounds);
criterion_main!(benches);
