//! E1 bench — grounded-tree broadcast (Theorem 3.1): power-of-two rule vs the
//! naive x/d rule across growing trees.

use anet_bench::grounded_tree_workloads;
use anet_core::tree_broadcast::run_tree_broadcast;
use anet_core::{ExactCommodity, Payload, Pow2Commodity};
use anet_sim::scheduler::FifoScheduler;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_tree_broadcast(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_broadcast");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(1));
    for workload in grounded_tree_workloads(&[32, 128, 512]) {
        group.bench_with_input(
            BenchmarkId::new("pow2", &workload.name),
            &workload,
            |b, w| {
                b.iter(|| {
                    run_tree_broadcast::<Pow2Commodity>(
                        &w.network,
                        Payload::synthetic(64),
                        &mut FifoScheduler::new(),
                    )
                    .expect("run completes")
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("naive", &workload.name),
            &workload,
            |b, w| {
                b.iter(|| {
                    run_tree_broadcast::<ExactCommodity>(
                        &w.network,
                        Payload::synthetic(64),
                        &mut FifoScheduler::new(),
                    )
                    .expect("run completes")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_tree_broadcast);
criterion_main!(benches);
