//! Engine-core throughput: the incremental active-edge-set scheduler versus the
//! naive full-scan reference, across graph sizes.
//!
//! This is the bench that justifies the scheduler refactor: with the full scan,
//! the cost of *one delivery* grows linearly with the number of edges, so run
//! time is O(E · deliveries); with the incremental core it is O(log E) per
//! delivery and the per-delivery cost is flat in graph size. Flooding `chain_gn`
//! and a dense layered DAG at n ∈ {100, 1 000, 10 000} makes that visible
//! directly: the full-scan timing per instance grows quadratically while the
//! incremental one grows (essentially) linearly.

use anet_bench::Workload;
use anet_graph::generators::{chain_gn, layered_dag};
use anet_sim::engine::run;
use anet_sim::reference::run_full_scan;
use anet_sim::scheduler::{FifoScheduler, RandomScheduler};
use anet_sim::{AnonymousProtocol, ExecutionConfig, NodeContext, Outcome};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// The flood protocol: every vertex forwards once on all out-ports; the
/// terminal accepts after `needed` receipts. Message payloads are unit, so the
/// bench isolates engine/scheduler overhead rather than protocol work.
#[derive(Debug, Clone)]
struct Flood {
    needed: u64,
}

#[derive(Debug, Clone)]
struct FloodState {
    received: u64,
    forwarded: bool,
}

impl AnonymousProtocol for Flood {
    type State = FloodState;
    type Message = ();

    fn name(&self) -> &'static str {
        "flood"
    }
    fn initial_state(&self, _ctx: &NodeContext) -> FloodState {
        FloodState {
            received: 0,
            forwarded: false,
        }
    }
    fn root_messages(&self, root_out_degree: usize) -> Vec<(usize, ())> {
        (0..root_out_degree).map(|p| (p, ())).collect()
    }
    fn on_receive(
        &self,
        ctx: &NodeContext,
        state: &mut FloodState,
        _in_port: usize,
        _message: &(),
    ) -> Vec<(usize, ())> {
        state.received += 1;
        if state.forwarded {
            return Vec::new();
        }
        state.forwarded = true;
        (0..ctx.out_degree).map(|p| (p, ())).collect()
    }
    fn should_terminate(&self, terminal_state: &FloodState) -> bool {
        terminal_state.received >= self.needed
    }
}

fn workloads(sizes: &[usize]) -> Vec<Workload> {
    let mut out = Vec::new();
    for &n in sizes {
        out.push(Workload {
            name: format!("chain-gn/{n}"),
            network: chain_gn(n).expect("n >= 1"),
        });
        // A dense-ish DAG: n/8 layers of width 8 with fanout 4.
        let mut rng = StdRng::seed_from_u64(0x0BE7_C0DE ^ n as u64);
        out.push(Workload {
            name: format!("layered-dag/{n}"),
            network: layered_dag(&mut rng, (n / 8).max(1), 8, 4).expect("valid parameters"),
        });
    }
    out
}

fn bench_engine_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_throughput");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    for workload in workloads(&[100, 1_000, 10_000]) {
        // Quiescent floods (needed = MAX) drain every message: deliveries == sends,
        // which is the engine's worst case and keeps both engines comparable.
        let protocol = Flood { needed: u64::MAX };

        group.bench_with_input(
            BenchmarkId::new("incremental/fifo", &workload.name),
            &workload,
            |b, w| {
                b.iter(|| {
                    let res = run(
                        &w.network,
                        &protocol,
                        &mut FifoScheduler::new(),
                        ExecutionConfig::default(),
                    );
                    assert_eq!(res.outcome, Outcome::Quiescent);
                    res.metrics.messages_delivered
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("incremental/random", &workload.name),
            &workload,
            |b, w| {
                let mut sched = RandomScheduler::seeded(7);
                b.iter(|| {
                    run(
                        &w.network,
                        &protocol,
                        &mut sched,
                        ExecutionConfig::default(),
                    )
                    .metrics
                    .messages_delivered
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("full_scan/fifo", &workload.name),
            &workload,
            |b, w| {
                b.iter(|| {
                    run_full_scan(
                        &w.network,
                        &protocol,
                        &mut FifoScheduler::new(),
                        ExecutionConfig::default(),
                    )
                    .metrics
                    .messages_delivered
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_engine_throughput);
criterion_main!(benches);
