//! E8 bench — topology mapping (Section 6).

use anet_bench::cyclic_workloads;
use anet_core::mapping::run_mapping;
use anet_graph::generators::complete_dag;
use anet_sim::scheduler::FifoScheduler;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_mapping(c: &mut Criterion) {
    let mut group = c.benchmark_group("mapping");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(1));
    let mut workloads = cyclic_workloads(&[10, 20, 40]);
    workloads.push(anet_bench::Workload {
        name: "complete-dag/10".to_owned(),
        network: complete_dag(10).expect("valid"),
    });
    for workload in &workloads {
        group.bench_with_input(
            BenchmarkId::from_parameter(&workload.name),
            workload,
            |b, w| {
                b.iter(|| {
                    run_mapping(&w.network, &mut FifoScheduler::new()).expect("run completes")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_mapping);
criterion_main!(benches);
