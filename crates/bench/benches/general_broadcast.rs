//! E5 bench — general-graph broadcast via interval-union commodities (Section 4).

use anet_bench::cyclic_workloads;
use anet_core::general_broadcast::run_general_broadcast;
use anet_core::Payload;
use anet_graph::generators::{cycle_with_tail, nested_cycles};
use anet_sim::scheduler::FifoScheduler;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_general_broadcast(c: &mut Criterion) {
    let mut group = c.benchmark_group("general_broadcast");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(1));
    let mut workloads = cyclic_workloads(&[10, 20, 40]);
    workloads.push(anet_bench::Workload {
        name: "cycle-with-tail/32".to_owned(),
        network: cycle_with_tail(32).expect("valid"),
    });
    workloads.push(anet_bench::Workload {
        name: "nested-cycles/4x6".to_owned(),
        network: nested_cycles(4, 6).expect("valid"),
    });
    for workload in &workloads {
        group.bench_with_input(
            BenchmarkId::from_parameter(&workload.name),
            workload,
            |b, w| {
                b.iter(|| {
                    run_general_broadcast(
                        &w.network,
                        Payload::synthetic(64),
                        &mut FifoScheduler::new(),
                    )
                    .expect("run completes")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_general_broadcast);
criterion_main!(benches);
