//! Interval-algebra micro-benchmarks: the linear two-pointer `IntervalUnion`
//! merges (with inline-`u64` dyadic endpoints) versus the retained
//! collect-sort-merge reference implementations in `anet_num::reference`.
//!
//! The workloads are adversarially fragmented stripings (see
//! [`anet_bench::striped_union`]): `union` merges two fully interleaved
//! stripings (every stripe is adjacent to its neighbours, so the merge
//! collapses everything), while `intersection` and `difference` run over
//! half-overlapping stripings that fragment into one piece per stripe. Sizes
//! sweep 10 → 10 000 maximal intervals, with both inline (≤ 64-bit mantissa)
//! and heap (`BigUint`-spilled) endpoints.
//!
//! The quadratic reference difference is capped at 1 000 intervals to keep the
//! bench runnable; the fast paths run at every size.

use anet_bench::striped_union;
use anet_num::{reference, IntervalUnion};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

const SIZES: &[usize] = &[10, 100, 1_000, 10_000];
const REFERENCE_DIFFERENCE_CAP: usize = 1_000;

struct OpBench {
    name: &'static str,
    fast: fn(&IntervalUnion, &IntervalUnion) -> IntervalUnion,
    reference: fn(&IntervalUnion, &IntervalUnion) -> IntervalUnion,
    /// Builds the two operands for `n` maximal intervals.
    operands: fn(usize, bool) -> (IntervalUnion, IntervalUnion),
}

fn union_operands(n: usize, heap: bool) -> (IntervalUnion, IntervalUnion) {
    (
        striped_union(n, 2, 0, 1, heap),
        striped_union(n, 2, 1, 1, heap),
    )
}

fn overlap_operands(n: usize, heap: bool) -> (IntervalUnion, IntervalUnion) {
    (
        striped_union(n, 4, 0, 2, heap),
        striped_union(n, 4, 1, 2, heap),
    )
}

const OPS: &[OpBench] = &[
    OpBench {
        name: "union",
        fast: |a, b| a.union(b),
        reference: reference::union,
        operands: union_operands,
    },
    OpBench {
        name: "intersection",
        fast: |a, b| a.intersection(b),
        reference: reference::intersection,
        operands: overlap_operands,
    },
    OpBench {
        name: "difference",
        fast: |a, b| a.difference(b),
        reference: reference::difference,
        operands: overlap_operands,
    },
];

fn bench_interval_algebra(c: &mut Criterion) {
    let mut group = c.benchmark_group("interval_algebra");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));

    for op in OPS {
        for &n in SIZES {
            for (heap, repr) in [(false, "inline"), (true, "heap")] {
                let (a, b) = (op.operands)(n, heap);
                group.bench_with_input(
                    BenchmarkId::new(format!("{}/fast/{repr}", op.name), n),
                    &(&a, &b),
                    |bencher, (a, b)| bencher.iter(|| black_box((op.fast)(a, b))),
                );
                if op.name != "difference" || n <= REFERENCE_DIFFERENCE_CAP {
                    group.bench_with_input(
                        BenchmarkId::new(format!("{}/reference/{repr}", op.name), n),
                        &(&a, &b),
                        |bencher, (a, b)| bencher.iter(|| black_box((op.reference)(a, b))),
                    );
                }
            }
        }
    }

    // The protocols' in-place hot call: merge a small delta into a large
    // accumulated state, reusing one scratch buffer across iterations.
    for &n in SIZES {
        let state = striped_union(n, 4, 0, 1, false);
        let delta = striped_union(8, 4, 2, 1, false);
        group.bench_with_input(
            BenchmarkId::new("union_in_place/small-delta", n),
            &(&state, &delta),
            |bencher, (state, delta)| {
                let mut scratch = Vec::new();
                bencher.iter(|| {
                    let mut acc = (*state).clone();
                    black_box(acc.union_in_place_with(delta, &mut scratch))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_interval_algebra);
criterion_main!(benches);
