//! E6/E7 bench — label assignment (Theorem 5.1) and the pruned-tree label growth
//! (Theorem 5.2).

use anet_bench::cyclic_workloads;
use anet_core::labeling::run_labeling;
use anet_graph::generators::pruned_tree;
use anet_sim::scheduler::FifoScheduler;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_labeling(c: &mut Criterion) {
    let mut group = c.benchmark_group("labeling");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(1));
    for workload in cyclic_workloads(&[10, 20, 40]) {
        group.bench_with_input(
            BenchmarkId::new("cyclic", &workload.name),
            &workload,
            |b, w| {
                b.iter(|| {
                    run_labeling(&w.network, &mut FifoScheduler::new()).expect("run completes")
                })
            },
        );
    }
    for (h, d) in [(8usize, 4usize), (32, 4), (16, 8)] {
        let (network, _) = pruned_tree(h, d).expect("valid");
        group.bench_with_input(
            BenchmarkId::new("pruned-tree", format!("h{h}-d{d}")),
            &network,
            |b, net| {
                b.iter(|| run_labeling(net, &mut FifoScheduler::new()).expect("run completes"))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_labeling);
criterion_main!(benches);
