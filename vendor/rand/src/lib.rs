//! A minimal, deterministic, API-compatible subset of the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io, so the
//! workspace vendors the few entry points it actually uses:
//!
//! * [`rngs::StdRng`] — a seedable PRNG (xoshiro256**, seeded via SplitMix64),
//! * [`SeedableRng::seed_from_u64`],
//! * [`Rng::gen_range`] over half-open integer and float ranges,
//! * [`Rng::gen_bool`].
//!
//! The implementation is *not* the real `rand`: stream values differ, and the
//! uniform-range sampling uses straightforward rejection-free reduction. Every
//! consumer in this workspace only requires determinism and rough uniformity, not
//! bit-compatibility with upstream `rand`. Swap this shim for the real crate by
//! editing the `[workspace.dependencies]` entry in the workspace root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::Range;

/// The core of a random number generator: a source of `u64`s.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next pseudo-random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A PRNG that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// A half-open range that knows how to sample a uniform value from an RNG.
pub trait SampleRange {
    /// The sampled value type.
    type Output;

    /// Draws one uniform sample from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty, mirroring `rand`'s contract.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;

            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                // Lemire-style multiply-shift reduction; bias is < 2^-64 per draw,
                // far below what any consumer here can observe.
                let x = rng.next_u64() as u128;
                self.start + ((x * span) >> 64) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange for Range<f64> {
    type Output = f64;

    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniform value from a half-open range.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic xoshiro256** generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into the 256-bit state,
            // as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..16).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_range_f64_in_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let v = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.gen_range(5usize..5);
    }
}
