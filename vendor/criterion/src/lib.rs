//! A minimal, API-compatible subset of the `criterion` benchmark harness.
//!
//! The build environment for this repository has no access to crates.io, so this
//! shim vendors the surface the workspace's benches use: [`Criterion`],
//! [`BenchmarkId`], benchmark groups with `sample_size` / `warm_up_time` /
//! `measurement_time`, `bench_function` / `bench_with_input`, [`Bencher::iter`],
//! [`black_box`] and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical machinery it reports, per benchmark, the
//! minimum / median / mean time per iteration over `sample_size` samples. That is
//! plenty to compare engine variants and catch order-of-magnitude regressions;
//! swap in the real crate via `[workspace.dependencies]` when network access is
//! available.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group: `function/parameter`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter rendering.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of the parameter rendering alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Reads the command line: the first non-flag argument becomes a substring
    /// filter on benchmark ids (cargo passes `--bench`; flags are ignored).
    pub fn configure_from_args(mut self) -> Self {
        self.filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }
}

/// A group of related benchmarks sharing measurement settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets how long to warm up before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs a benchmark that needs no external input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        if self.is_selected(&id) {
            let report = self.run_samples(|b| f(b));
            self.print_report(&id, &report);
        }
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        if self.is_selected(&id) {
            let report = self.run_samples(|b| f(b, input));
            self.print_report(&id, &report);
        }
        self
    }

    /// Ends the group (kept for API compatibility; reports print eagerly).
    pub fn finish(self) {}

    fn is_selected(&self, id: &BenchmarkId) -> bool {
        match &self.criterion.filter {
            Some(f) => format!("{}/{}", self.name, id.id).contains(f.as_str()),
            None => true,
        }
    }

    fn run_samples<F: FnMut(&mut Bencher)>(&self, mut f: F) -> Report {
        // Warm-up: run until the warm-up budget is spent, measuring nothing.
        let warm_up_end = Instant::now() + self.warm_up_time;
        let mut iters_per_sample = 1u64;
        while Instant::now() < warm_up_end {
            let mut bencher = Bencher {
                iterations: iters_per_sample,
                elapsed: Duration::ZERO,
            };
            f(&mut bencher);
            // Aim each sample at measurement_time / sample_size.
            let target = self.measurement_time.as_secs_f64() / self.sample_size as f64;
            let per_iter = bencher.elapsed.as_secs_f64() / iters_per_sample as f64;
            if per_iter > 0.0 {
                iters_per_sample = ((target / per_iter).ceil() as u64).clamp(1, 1 << 24);
            }
        }
        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut bencher = Bencher {
                iterations: iters_per_sample,
                elapsed: Duration::ZERO,
            };
            f(&mut bencher);
            per_iter_ns.push(bencher.elapsed.as_nanos() as f64 / iters_per_sample as f64);
        }
        per_iter_ns.sort_by(|a, b| a.partial_cmp(b).expect("times are finite"));
        Report {
            min_ns: per_iter_ns[0],
            median_ns: per_iter_ns[per_iter_ns.len() / 2],
            mean_ns: per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64,
            iterations: iters_per_sample,
            samples: per_iter_ns.len(),
        }
    }

    fn print_report(&self, id: &BenchmarkId, report: &Report) {
        println!(
            "{}/{:<40} min {:>12} median {:>12} mean {:>12} ({} samples x {} iters)",
            self.name,
            id.id,
            format_ns(report.min_ns),
            format_ns(report.median_ns),
            format_ns(report.mean_ns),
            report.samples,
            report.iterations,
        );
    }
}

#[derive(Debug)]
struct Report {
    min_ns: f64,
    median_ns: f64,
    mean_ns: f64,
    iterations: u64,
    samples: usize,
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Times closures for one sample.
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for this sample's iteration count, timing the whole batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the `main` function of a bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("f", "p").id, "f/p");
        assert_eq!(BenchmarkId::from_parameter(32).id, "32");
        assert_eq!(BenchmarkId::from("name").id, "name");
    }

    #[test]
    fn groups_run_and_report() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut ran = 0u64;
        group.bench_function("count", |b| b.iter(|| ran = ran.wrapping_add(1)));
        group.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn format_ns_scales_units() {
        assert!(format_ns(5.0).ends_with("ns"));
        assert!(format_ns(5_000.0).ends_with("us"));
        assert!(format_ns(5_000_000.0).ends_with("ms"));
        assert!(format_ns(5_000_000_000.0).ends_with('s'));
    }
}
