//! A minimal, deterministic, API-compatible subset of the `proptest` crate.
//!
//! The build environment for this repository has no access to crates.io, so this
//! shim vendors exactly the surface the workspace's property tests use:
//!
//! * the [`strategy::Strategy`] trait with [`strategy::Strategy::prop_map`],
//! * strategies for integer and float ranges, tuples, [`strategy::Just`] and
//!   [`collection::vec`],
//! * [`arbitrary::any`] for the primitive types the tests draw,
//! * the [`proptest!`] macro with `#![proptest_config(...)]` support, and the
//!   `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` / `prop_assume!`
//!   assertion macros.
//!
//! Differences from the real crate: no shrinking (a failing case reports its
//! inputs via `Debug` but is not minimised), and value generation is a simple
//! deterministic PRNG keyed by the test name, so failures reproduce exactly
//! across runs. `PROPTEST_CASES` in the environment overrides the case count.
//!
//! # Failure replay
//!
//! The shim supports the cheap half of failure persistence: every failing
//! `prop_assert*!` panic reports the RNG state the failing case was generated
//! from as `PROPTEST_SEED=<test path>:<seed>`, and setting that variable in
//! the environment replays exactly that case (and only it — the run executes
//! a single case, reported as case #0). The value is **scoped to one test**:
//! every other property test ignores it and runs its normal sweep, so
//! replaying a failure in a full `cargo test` does not silently collapse the
//! rest of the suite's coverage (a bare unscoped seed is ignored entirely).
//! Panics raised directly by the test body (not via `prop_assert*!`) are not
//! intercepted and carry no seed.

#![forbid(unsafe_code)]

/// Test-case RNG and config plumbing.
pub mod test_runner {
    /// Deterministic SplitMix64 generator used to produce test inputs.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates an RNG from a seed.
        pub fn seed_from_u64(state: u64) -> Self {
            TestRng { state }
        }

        /// Creates the RNG for a named test: deterministic per test name.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng::seed_from_u64(h)
        }

        /// The current generator state. Reconstructing an RNG from this value
        /// via [`TestRng::seed_from_u64`] continues the exact same stream —
        /// which is how failing cases are replayed: the runner captures the
        /// state *before* generating a case's inputs and reports it as
        /// `PROPTEST_SEED` on failure.
        pub fn state(&self) -> u64 {
            self.state
        }

        /// Returns the next pseudo-random `u64`.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Returns a uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "cannot sample an empty range");
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }

        /// Returns a uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// How a generated test case failed.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An input did not satisfy a `prop_assume!` precondition.
        Reject,
        /// A `prop_assert*!` failed with the given message.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds the failure variant.
        pub fn fail(msg: String) -> Self {
            TestCaseError::Fail(msg)
        }
    }

    /// The `Result` type the bodies of `proptest!` tests evaluate to.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runner configuration; only the case count is honoured by the shim.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    /// The name the real crate exports the config under.
    pub type ProptestConfig = Config;

    impl Config {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }

        /// Honours the `PROPTEST_CASES` environment variable, like the real crate.
        pub fn effective_cases(&self) -> u32 {
            env_var_locked("PROPTEST_CASES")
                .and_then(|v| v.parse().ok())
                .unwrap_or(self.cases)
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Serialises every environment access the shim performs. POSIX `setenv`
    /// racing `getenv` on another thread is undefined behaviour and cargo runs
    /// tests on parallel threads, so the shim's reads go through this lock and
    /// the shim's own replay tests take it around their `set_var`/`remove_var`
    /// calls. Foreign processes are unaffected (the lock is per-process, which
    /// is exactly the scope of the hazard).
    pub fn env_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn env_var_locked(name: &str) -> Option<String> {
        let _guard = env_lock();
        std::env::var(name).ok()
    }

    /// The failure-replay seed for the test named `test_name` (its full
    /// module path, as failure messages print it) from the `PROPTEST_SEED`
    /// environment variable. The variable's format is `<test path>:<seed>`;
    /// a value scoped to a *different* test — or an unscoped bare seed —
    /// yields `None`, so only the intended test replays while the rest of the
    /// suite keeps its full case sweep.
    pub fn replay_seed_for(test_name: &str) -> Option<u64> {
        replay_seed_scoped(test_name, env_var_locked("PROPTEST_SEED").as_deref())
    }

    /// Pure core of [`replay_seed_for`], factored out so the parsing is
    /// testable without touching the process environment.
    pub fn replay_seed_scoped(test_name: &str, value: Option<&str>) -> Option<u64> {
        let (name, seed) = value?.trim().rsplit_once(':')?;
        if name != test_name {
            return None;
        }
        seed.parse().ok()
    }
}

/// Strategies: composable descriptions of how to generate values.
pub mod strategy {
    use crate::test_runner::TestRng;
    use core::ops::Range;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of its value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64) - (self.start as u64);
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, usize);

    impl Strategy for Range<u64> {
        type Value = u64;

        fn generate(&self, rng: &mut TestRng) -> u64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.below(self.end - self.start)
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
}

/// Strategies for collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::ops::Range;

    /// A strategy producing `Vec`s with lengths drawn from `len` and elements
    /// drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Builds a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.len.start < self.len.end, "empty length range");
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `any::<T>()` support for primitive types.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_uint!(u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone)]
    pub struct Any<T>(PhantomData<T>);

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }
}

/// Everything a property test needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Fails the current test case with a formatted message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current test case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: `{:?}` == `{:?}`",
                    l,
                    r
                )
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l == *r, $($fmt)+)
            }
        }
    };
}

/// Fails the current test case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` != `{:?}`", l, r)
            }
        }
    };
}

/// Rejects the current test case (skips it) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Declares property tests: each `#[test] fn name(arg in strategy, ...) { body }`
/// becomes a zero-argument test running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default());
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let test_path = concat!(module_path!(), "::", stringify!($name));
                let replay = $crate::test_runner::replay_seed_for(test_path);
                let cases = match replay {
                    ::core::option::Option::Some(_) => 1,
                    ::core::option::Option::None => config.effective_cases(),
                };
                let mut rng = match replay {
                    ::core::option::Option::Some(seed) => {
                        $crate::test_runner::TestRng::seed_from_u64(seed)
                    }
                    ::core::option::Option::None => {
                        $crate::test_runner::TestRng::for_test(test_path)
                    }
                };
                let mut rejected: u32 = 0;
                let mut case: u32 = 0;
                while case < cases {
                    let case_seed = rng.state();
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let inputs = format!(
                        concat!($(concat!(stringify!($arg), " = {:?}, ")),+),
                        $(&$arg),+
                    );
                    let outcome: $crate::test_runner::TestCaseResult = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    match outcome {
                        ::core::result::Result::Ok(()) => {
                            case += 1;
                        }
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject,
                        ) => {
                            rejected += 1;
                            assert!(
                                rejected < 16 * cases,
                                "too many prop_assume! rejections in {}",
                                stringify!($name)
                            );
                        }
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => {
                            panic!(
                                "property {} failed at case #{case}: {msg}\n    inputs: {inputs}\n    replay with: PROPTEST_SEED={test_path}:{case_seed}",
                                stringify!($name)
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::for_test("x");
        let mut b = crate::test_runner::TestRng::for_test("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn rng_state_round_trips_through_seed() {
        let mut a = crate::test_runner::TestRng::for_test("state");
        a.next_u64();
        let mut b = crate::test_runner::TestRng::seed_from_u64(a.state());
        assert_eq!(a.next_u64(), b.next_u64());
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn replay_seed_parsing_is_scoped_to_the_test() {
        use crate::test_runner::replay_seed_scoped;
        let me = "my_crate::tests::prop";
        assert_eq!(replay_seed_scoped(me, None), None);
        assert_eq!(replay_seed_scoped(me, Some("")), None);
        // Bare unscoped seeds are ignored: they would otherwise collapse
        // every proptest in the workspace to a single case.
        assert_eq!(replay_seed_scoped(me, Some("42")), None);
        // Seeds scoped to another test are ignored too.
        assert_eq!(
            replay_seed_scoped(me, Some("other_crate::tests::prop:42")),
            None
        );
        // Only the exact test path matches; the name part may contain colons.
        assert_eq!(
            replay_seed_scoped(me, Some("my_crate::tests::prop:42")),
            Some(42)
        );
        assert_eq!(
            replay_seed_scoped(me, Some("  my_crate::tests::prop:42\n")),
            Some(42)
        );
        assert_eq!(
            replay_seed_scoped(me, Some("my_crate::tests::prop:18446744073709551615")),
            Some(u64::MAX)
        );
        assert_eq!(
            replay_seed_scoped(me, Some("my_crate::tests::prop:not a seed")),
            None
        );
    }

    // Deliberately failing property, declared *without* `#[test]` so the suite
    // does not run it directly: the replay test below drives it by hand. The
    // shim's RNG is deterministic per test name, so the first even `x` (and
    // hence the failure and its reported seed) is fixed forever.
    proptest! {
        fn replay_probe(x in 0u32..100) {
            prop_assert!(x % 2 == 1, "probe rejects even x = {}", x);
        }
    }

    // Counts how many cases `count_probe` executes, to observe whether a
    // foreign replay seed perturbs an unrelated test's sweep.
    static COUNT_PROBE_CASES: std::sync::atomic::AtomicU32 = std::sync::atomic::AtomicU32::new(0);

    // Serialises the two tests that set PROPTEST_SEED and read the case
    // counter against each other. The actual environment mutations
    // additionally take `test_runner::env_lock()` (briefly, never across a
    // probe call) so they cannot race the locked reads every `proptest!` test
    // performs on other threads.
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn set_replay_var(value: &str) {
        let _guard = crate::test_runner::env_lock();
        std::env::set_var("PROPTEST_SEED", value);
    }

    fn clear_replay_var() {
        let _guard = crate::test_runner::env_lock();
        std::env::remove_var("PROPTEST_SEED");
    }

    proptest! {
        fn count_probe(x in 0u32..10) {
            COUNT_PROBE_CASES.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            prop_assert!(x < 10);
        }
    }

    #[test]
    fn failing_case_reports_seed_and_replays_from_env() {
        let _guard = ENV_LOCK.lock().unwrap();
        let msg = *std::panic::catch_unwind(replay_probe)
            .expect_err("probe must fail")
            .downcast::<String>()
            .expect("prop_assert panics carry a String");
        assert!(msg.contains("replay with: PROPTEST_SEED="), "{msg}");
        // The reported value is `<test path>:<seed>`, scoped to the probe.
        let token = msg
            .split("PROPTEST_SEED=")
            .nth(1)
            .unwrap()
            .lines()
            .next()
            .unwrap()
            .trim()
            .to_owned();
        assert!(token.contains("::replay_probe:"), "{token}");
        let inputs = msg
            .split("inputs: ")
            .nth(1)
            .unwrap()
            .lines()
            .next()
            .unwrap()
            .to_owned();
        // Replaying via the environment reruns exactly the failing case as
        // case #0 with identical inputs. The value is scoped, so sibling
        // proptests racing this window ignore it entirely.
        set_replay_var(&token);
        let replayed = std::panic::catch_unwind(replay_probe);
        // While the scoped seed is set, an unrelated property still runs its
        // full configured sweep — replay must not gut the rest of the suite.
        COUNT_PROBE_CASES.store(0, std::sync::atomic::Ordering::SeqCst);
        count_probe();
        let unrelated_cases = COUNT_PROBE_CASES.load(std::sync::atomic::Ordering::SeqCst);
        clear_replay_var();
        assert_eq!(
            unrelated_cases,
            crate::test_runner::ProptestConfig::default().effective_cases(),
            "a foreign PROPTEST_SEED must not shrink an unrelated test's sweep"
        );
        let replay_msg = *replayed
            .expect_err("replay must fail again")
            .downcast::<String>()
            .expect("prop_assert panics carry a String");
        assert!(replay_msg.contains("failed at case #0"), "{replay_msg}");
        assert!(
            replay_msg.contains(&inputs),
            "replayed inputs differ:\n  original: {inputs}\n  replay:   {replay_msg}"
        );
    }

    #[test]
    fn scoped_replay_runs_exactly_one_case_of_its_own_test() {
        let _guard = ENV_LOCK.lock().unwrap();
        // A seed scoped to `count_probe` itself collapses it to one case.
        let token = format!("{}::count_probe:12345", module_path!());
        set_replay_var(&token);
        COUNT_PROBE_CASES.store(0, std::sync::atomic::Ordering::SeqCst);
        count_probe();
        let cases = COUNT_PROBE_CASES.load(std::sync::atomic::Ordering::SeqCst);
        clear_replay_var();
        assert_eq!(cases, 1, "a scoped seed replays a single case");
    }

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u32..10, y in 0usize..4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y < 4);
        }

        #[test]
        fn map_and_tuple_compose(v in (0u64..5, 1u64..3).prop_map(|(a, b)| a * b)) {
            prop_assert!(v <= 8);
        }

        #[test]
        fn vec_strategy_respects_len(v in prop::collection::vec(0u32..9, 0..6)) {
            prop_assert!(v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 9));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn just_yields_the_value(x in Just(7u32)) {
            prop_assert_eq!(x, 7);
        }
    }
}
