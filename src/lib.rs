//! # anet — Distributed broadcasting and mapping in directed anonymous networks
//!
//! This is the facade crate of a full reproduction of
//! *"Distributed Broadcasting and Mapping Protocols in Directed Anonymous Networks"*
//! (Langberg, Schwartz, Bruck — PODC 2007).
//!
//! It re-exports the workspace crates so downstream users can depend on a single
//! crate:
//!
//! * [`num`] — exact arithmetic: arbitrary-precision naturals, dyadic rationals,
//!   exact rationals, intervals and interval unions over `[0, 1)`.
//! * [`graph`] — directed multigraphs with ordered ports, the rooted/terminated
//!   [`graph::Network`] model of the paper, classification, linear cuts and every
//!   topology generator used by the paper's constructions.
//! * [`sim`] — the asynchronous anonymous-protocol execution engine with pluggable
//!   (including adversarial) delivery schedules and communication-complexity metrics.
//! * [`protocols`] — the paper's protocols: grounded-tree broadcast, DAG broadcast,
//!   general-graph broadcast, unique label assignment and topology mapping.
//! * [`lowerbounds`] — executable versions of the paper's lower-bound constructions.
//!
//! # Quickstart
//!
//! ```
//! use anet::graph::generators::chain_gn;
//! use anet::protocols::tree_broadcast::{run_tree_broadcast, Pow2Commodity};
//! use anet::protocols::Payload;
//! use anet::sim::scheduler::FifoScheduler;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The chain family G_n from Figure 5 of the paper.
//! let network = chain_gn(16)?;
//! let report = run_tree_broadcast::<Pow2Commodity>(
//!     &network,
//!     Payload::from_bytes(b"hello"),
//!     &mut FifoScheduler::new(),
//! )?;
//! assert!(report.terminated);
//! assert!(report.all_received);
//! # Ok(())
//! # }
//! ```

pub use anet_core as protocols;
pub use anet_graph as graph;
pub use anet_lowerbounds as lowerbounds;
pub use anet_num as num;
pub use anet_sim as sim;
