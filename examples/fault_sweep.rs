//! Fault-injection walkthrough: the same protocols and topologies, now run
//! against an adversarial delivery layer and from corrupted starting state.
//!
//! The paper's protocols are specified for reliable (if adversarially
//! ordered) channels. This example probes what happens beyond that contract:
//!
//! * **Fault plans** (`faults drop=… dup=… reorder=… seed=…` in spec files,
//!   [`ScenarioSpec::Faulty`] here) wrap every scheduler of the standard
//!   battery in an [`anet_sim::faults::FaultyScheduler`] that drops,
//!   duplicates and reorders deliveries from a deterministic per-unit RNG
//!   stream. A run that goes quiescent with messages destroyed is reported
//!   as `starved` instead of `quiescent`.
//! * **Corrupted starts** ([`ScenarioSpec::Corrupt`],
//!   [`anet_core::StateCorruption`]) perturb protocol state before the first
//!   delivery — scrambled vertex labels, lost partition flags, a stale
//!   terminal view — and the success column reports whether the protocol's
//!   recovery predicate still holds at the end.
//!
//! Everything stays deterministic: the fault stream is a pure function of the
//! unit (scenario seed, battery seed, battery position), so the sweep below
//! prints the same table on every run, across any shard or thread count.
//!
//! Run with: `cargo run --release --example fault_sweep`
//!
//! For the committed CI spec exercising the same machinery across processes:
//! `cargo run --release -p anet-sweep --bin sweep -- --spec crates/sweep/specs/faults.spec --shards 2`

use std::collections::BTreeMap;

use anet_sweep::{
    Manifest, Partition, ProtocolSpec, RunRecord, ScenarioSpec, SweepSpec, TopologySpec,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = SweepSpec {
        protocols: vec![
            ProtocolSpec::Mapping,
            ProtocolSpec::Labeling,
            ProtocolSpec::GeneralBroadcast { payload_bits: 16 },
        ],
        topologies: vec![
            TopologySpec::ChainGn { n: 8 },
            TopologySpec::CycleWithTail { k: 9 },
            TopologySpec::CompleteDag { internal: 6 },
            TopologySpec::RandomCyclic {
                internal: 12,
                forward_pct: 15,
                back_pct: 20,
                seed: 2007,
            },
        ],
        seeds: vec![42],
        random_schedulers: 2,
        max_deliveries: 10_000_000,
        scenarios: vec![
            ScenarioSpec::Pristine,
            // A survivable adversary: some messages lost, some doubled,
            // bounded reordering on top of each battery scheduler.
            ScenarioSpec::Faulty {
                drop_pct: 15,
                dup_pct: 10,
                reorder: 2,
                seed: 7,
            },
            // Total loss: every delivery destroyed — runs starve.
            ScenarioSpec::Faulty {
                drop_pct: 100,
                dup_pct: 0,
                reorder: 0,
                seed: 1,
            },
            ScenarioSpec::Corrupt(anet_core::StateCorruption::ScrambledLabels { seed: 11 }),
            ScenarioSpec::Corrupt(anet_core::StateCorruption::LostPartition),
            ScenarioSpec::Corrupt(anet_core::StateCorruption::StaleTerminal),
        ],
    };

    let manifest = Manifest::from_spec(&spec);
    println!(
        "sweeping {} units = {} pristine cells x {} scenarios\n",
        manifest.len(),
        manifest.len() / spec.scenarios.len(),
        spec.scenarios.len()
    );

    let shards = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let merged = anet_sweep::run_sweep_threaded(&spec, shards, Partition::Hash)?;
    let records: Vec<RunRecord> = merged
        .lines()
        .map(|line| RunRecord::parse_line(line).expect("merged lines are canonical"))
        .collect();

    // Aggregate per (protocol, scenario): outcomes, success rate, adversary
    // activity.
    #[derive(Default)]
    struct Row {
        runs: u64,
        ok: u64,
        starved: u64,
        dropped: u64,
        duplicated: u64,
    }
    let mut table: BTreeMap<(String, String), Row> = BTreeMap::new();
    for r in &records {
        let row = table
            .entry((r.protocol.clone(), r.scenario.clone()))
            .or_default();
        row.runs += 1;
        row.ok += u64::from(r.ok);
        row.starved += u64::from(r.outcome == "starved");
        row.dropped += r.dropped;
        row.duplicated += r.duplicated;
    }

    println!(
        "{:<18} {:<22} {:>5} {:>5} {:>8} {:>9} {:>11}",
        "protocol", "scenario", "runs", "ok", "starved", "dropped", "duplicated"
    );
    for ((protocol, scenario), row) in &table {
        println!(
            "{protocol:<18} {scenario:<22} {:>5} {:>5} {:>8} {:>9} {:>11}",
            row.runs, row.ok, row.starved, row.dropped, row.duplicated
        );
    }

    // The structural takeaways the fault layer guarantees.
    let pristine_ok = table
        .iter()
        .filter(|((_, s), _)| s == "pristine")
        .all(|(_, row)| row.ok == row.runs);
    let total_drop_starved = table
        .iter()
        .filter(|((_, s), _)| s.starts_with("faults/d100"))
        .all(|(_, row)| row.starved == row.runs);
    println!("\npristine runs all succeed:       {pristine_ok}");
    println!("total-drop runs all starve:      {total_drop_starved}");
    println!(
        "spec round-trips through text:   {}",
        SweepSpec::parse(&spec.to_spec_string()).is_ok_and(|p| p == spec)
    );
    Ok(())
}
