//! Fault-injection walkthrough: the same protocols and topologies, now run
//! against an adversarial delivery layer and from corrupted starting state.
//!
//! The paper's protocols are specified for reliable (if adversarially
//! ordered) channels. This example probes what happens beyond that contract:
//!
//! * **Fault plans** (`faults drop=… dup=… reorder=… seed=…` in spec files,
//!   [`ScenarioSpec::Faulty`] here) wrap every scheduler of the standard
//!   battery in an [`anet_sim::faults::FaultyScheduler`] that drops,
//!   duplicates and reorders deliveries from a deterministic per-unit RNG
//!   stream. A run that goes quiescent with messages destroyed is reported
//!   as `starved` instead of `quiescent`.
//! * **Corrupted starts** ([`ScenarioSpec::Corrupt`],
//!   [`anet_core::StateCorruption`]) perturb protocol state before the first
//!   delivery — scrambled vertex labels, lost partition flags, a stale
//!   terminal view — and the success column reports whether the protocol's
//!   recovery predicate still holds at the end.
//! * **Retry variants** (`retry=<budget>` in the `faults` stanza, also the
//!   `faults ramp drop=a..b step=s` sugar) run the same fault plan through
//!   [`anet_sim::run_recovering`]: whenever the run would starve, every
//!   vertex re-floods its frontier, up to the budget. The walkthrough's
//!   second table quantifies what that recovery *costs*: at each ramp
//!   intensity, how often the single-shot run starves, how often the retry
//!   twin recovers, and how many extra wire bits the recovered runs paid
//!   compared to the pristine run of the same cell.
//! * **Crash windows** (`crash=<node>:<from>..<until>`) take one vertex off
//!   the network for a step interval — deliveries addressed to it are
//!   consumed and destroyed. A single outage on a single-path topology
//!   starves the run; a retry twin with enough budget outlasts the window.
//!
//! Everything stays deterministic: the fault stream is a pure function of the
//! unit (scenario seed, battery seed, battery position), so the sweep below
//! prints the same table on every run, across any shard or thread count.
//!
//! Run with: `cargo run --release --example fault_sweep`
//!
//! For the committed CI spec exercising the same machinery across processes:
//! `cargo run --release -p anet-sweep --bin sweep -- --spec crates/sweep/specs/faults.spec --shards 2`

use std::collections::BTreeMap;

use anet_sweep::{
    Manifest, Partition, ProtocolSpec, RunRecord, ScenarioSpec, SweepSpec, TopologySpec,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = SweepSpec {
        protocols: vec![
            ProtocolSpec::Mapping,
            ProtocolSpec::Labeling,
            ProtocolSpec::GeneralBroadcast { payload_bits: 16 },
        ],
        topologies: vec![
            TopologySpec::ChainGn { n: 8 },
            TopologySpec::CycleWithTail { k: 9 },
            TopologySpec::CompleteDag { internal: 6 },
            TopologySpec::RandomCyclic {
                internal: 12,
                forward_pct: 15,
                back_pct: 20,
                seed: 2007,
            },
        ],
        seeds: vec![42],
        random_schedulers: 2,
        max_deliveries: 10_000_000,
        scenarios: vec![
            ScenarioSpec::Pristine,
            // A survivable adversary: some messages lost, some doubled,
            // bounded reordering on top of each battery scheduler.
            ScenarioSpec::Faulty {
                drop_pct: 15,
                dup_pct: 10,
                reorder: 2,
                seed: 7,
                retry: 0,
                crashes: vec![],
            },
            // Total loss: every delivery destroyed — runs starve.
            ScenarioSpec::Faulty {
                drop_pct: 100,
                dup_pct: 0,
                reorder: 0,
                seed: 1,
                retry: 0,
                crashes: vec![],
            },
            ScenarioSpec::Corrupt(anet_core::StateCorruption::ScrambledLabels { seed: 11 }),
            ScenarioSpec::Corrupt(anet_core::StateCorruption::LostPartition),
            ScenarioSpec::Corrupt(anet_core::StateCorruption::StaleTerminal),
        ],
    };

    // The recovery ramp: each drop intensity twice under the same plan seed
    // (`retry` never perturbs the fault stream) — once single-shot, once with
    // a re-flood budget — plus a crash-window pair. In spec files this is
    // `faults ramp drop=10..30 step=10 seed=7` (and again with `retry=4`).
    let mut spec = spec;
    for drop in [10u8, 20, 30] {
        for retry in [0u32, 4] {
            spec.scenarios.push(ScenarioSpec::Faulty {
                drop_pct: drop,
                dup_pct: 0,
                reorder: 0,
                seed: 7,
                retry,
                crashes: vec![],
            });
        }
    }
    for retry in [0u32, 8] {
        spec.scenarios.push(ScenarioSpec::Faulty {
            drop_pct: 0,
            dup_pct: 0,
            reorder: 0,
            seed: 0,
            retry,
            crashes: vec![(1, 0, 6)],
        });
    }

    let manifest = Manifest::from_spec(&spec);
    println!(
        "sweeping {} units = {} pristine cells x {} scenarios\n",
        manifest.len(),
        manifest.len() / spec.scenarios.len(),
        spec.scenarios.len()
    );

    let shards = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let merged = anet_sweep::run_sweep_threaded(&spec, shards, Partition::Hash)?;
    let records: Vec<RunRecord> = merged
        .lines()
        .map(|line| RunRecord::parse_line(line).expect("merged lines are canonical"))
        .collect();

    // Aggregate per (protocol, scenario): outcomes, success rate, adversary
    // activity.
    #[derive(Default)]
    struct Row {
        runs: u64,
        ok: u64,
        starved: u64,
        dropped: u64,
        duplicated: u64,
    }
    let mut table: BTreeMap<(String, String), Row> = BTreeMap::new();
    for r in &records {
        let row = table
            .entry((r.protocol.clone(), r.scenario.clone()))
            .or_default();
        row.runs += 1;
        row.ok += u64::from(r.ok);
        row.starved += u64::from(r.outcome == "starved");
        row.dropped += r.dropped;
        row.duplicated += r.duplicated;
    }

    println!(
        "{:<18} {:<22} {:>5} {:>5} {:>8} {:>9} {:>11}",
        "protocol", "scenario", "runs", "ok", "starved", "dropped", "duplicated"
    );
    for ((protocol, scenario), row) in &table {
        println!(
            "{protocol:<18} {scenario:<22} {:>5} {:>5} {:>8} {:>9} {:>11}",
            row.runs, row.ok, row.starved, row.dropped, row.duplicated
        );
    }

    // The recovery-overhead table: per protocol and ramp intensity, what the
    // single-shot runs did, what the retry twins did, and the wire-bit price
    // of the recoveries relative to the pristine run of the same cell.
    let cell = |r: &RunRecord| {
        (
            r.protocol.clone(),
            r.topology.clone(),
            r.scheduler.clone(),
            r.battery_index,
            r.seed,
        )
    };
    let pristine_bits: BTreeMap<_, u64> = records
        .iter()
        .filter(|r| r.scenario == "pristine")
        .map(|r| (cell(r), r.total_bits))
        .collect();

    #[derive(Default)]
    struct RampRow {
        single_starved: u64,
        single_ok: u64,
        retry_recovered: u64,
        retry_starved: u64,
        extra_bits: i64,
    }
    let mut ramp: BTreeMap<(String, u8), RampRow> = BTreeMap::new();
    for r in &records {
        let Some(rest) = r.scenario.strip_prefix("faults/d") else {
            continue;
        };
        // Ramp scenarios only: plan seed 7, no dup/reorder/crash.
        let Some(drop) = rest
            .strip_suffix("u0r0s7")
            .or_else(|| rest.strip_suffix("u0r0s7+t4"))
            .and_then(|d| d.parse::<u8>().ok())
        else {
            continue;
        };
        let row = ramp.entry((r.protocol.clone(), drop)).or_default();
        if r.scenario.contains("+t") {
            if r.ok {
                row.retry_recovered += 1;
                row.extra_bits += r.total_bits as i64 - pristine_bits[&cell(r)] as i64;
            } else if r.outcome == "starved" {
                row.retry_starved += 1;
            }
        } else if r.outcome == "starved" {
            row.single_starved += 1;
        } else if r.ok {
            row.single_ok += 1;
        }
    }

    println!(
        "\n{:<18} {:>5} {:>10} {:>10} {:>10} {:>10} {:>16}",
        "protocol", "drop%", "1shot-ok", "1shot-stv", "retry-ok", "retry-stv", "extra-bits/rec"
    );
    for ((protocol, drop), row) in &ramp {
        let mean_extra = if row.retry_recovered > 0 {
            row.extra_bits / row.retry_recovered as i64
        } else {
            0
        };
        println!(
            "{protocol:<18} {drop:>5} {:>10} {:>10} {:>10} {:>10} {:>16}",
            row.single_ok, row.single_starved, row.retry_recovered, row.retry_starved, mean_extra
        );
    }

    // The crash-window pair: the same outage with and without a retry budget.
    let crash_starved = records
        .iter()
        .filter(|r| r.scenario.ends_with("+c1:0..6") && !r.scenario.contains("+t"))
        .filter(|r| r.outcome == "starved")
        .count();
    let crash_recovered = records
        .iter()
        .filter(|r| r.scenario.contains("+t8+c1:0..6") && r.ok)
        .count();
    println!("\ncrash-window runs starved without retries:  {crash_starved}");
    println!("crash-window runs recovered with retry=8:   {crash_recovered}");

    // The structural takeaways the fault layer guarantees.
    let pristine_ok = table
        .iter()
        .filter(|((_, s), _)| s == "pristine")
        .all(|(_, row)| row.ok == row.runs);
    let total_drop_starved = table
        .iter()
        .filter(|((_, s), _)| s.starts_with("faults/d100"))
        .all(|(_, row)| row.starved == row.runs);
    println!("\npristine runs all succeed:       {pristine_ok}");
    println!("total-drop runs all starve:      {total_drop_starved}");
    println!(
        "spec round-trips through text:   {}",
        SweepSpec::parse(&spec.to_spec_string()).is_ok_and(|p| p == spec)
    );
    Ok(())
}
