//! Scenario scaling: sweep the full scheduler battery × a topology grid in
//! parallel and summarise the adversary's effect on the mapping protocol.
//!
//! The paper's correctness claims are universally quantified over delivery
//! orders; the sweep approximates that quantifier at scale by fanning
//! (topology, scheduler) cells out over a worker pool
//! ([`anet::sim::runner::run_battery_grid`]). Results come back ordered by
//! (topology, scheduler) regardless of thread timing, so the printed table is
//! reproducible run to run.
//!
//! Run with: `cargo run --release --example grid_sweep`

use anet::graph::generators;
use anet::protocols::mapping::{Mapping, ReconstructedTopology};
use anet::sim::engine::ExecutionConfig;
use anet::sim::runner::run_battery_grid;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2007);
    let topologies: Vec<(String, anet::graph::Network)> = vec![
        ("chain-gn/12".to_owned(), generators::chain_gn(12)?),
        ("cycle-tail/16".to_owned(), generators::cycle_with_tail(16)?),
        (
            "nested-cycles/3x5".to_owned(),
            generators::nested_cycles(3, 5)?,
        ),
        ("complete-dag/12".to_owned(), generators::complete_dag(12)?),
        (
            "random-cyclic/24".to_owned(),
            generators::random_cyclic(&mut rng, 24, 0.12, 0.18)?,
        ),
        (
            "random-dag/24".to_owned(),
            generators::random_dag(&mut rng, 24, 0.2)?,
        ),
    ];

    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    println!(
        "sweeping {} topologies x battery on {} worker(s)\n",
        topologies.len(),
        workers
    );

    let grid = run_battery_grid(
        &topologies,
        Mapping::new,
        ExecutionConfig::default(),
        42,
        3,
        workers,
    );

    println!(
        "{:<18} {:<15} {:>10} {:>12} {:>8}",
        "topology", "scheduler", "deliveries", "total bits", "exact"
    );
    for cell in &grid {
        let result = &cell.run.result;
        let (_, network) = topologies
            .iter()
            .find(|(name, _)| name == &cell.topology)
            .expect("grid rows name input topologies");
        let labels: Vec<_> = result.states.iter().map(|s| s.label.clone()).collect();
        let exact = result.outcome.terminated()
            && ReconstructedTopology::from_terminal_state(
                &result.states[network.terminal().index()],
            )
            .matches_exactly(network, &labels);
        println!(
            "{:<18} {:<15} {:>10} {:>12} {:>8}",
            cell.topology,
            cell.run.scheduler,
            result.metrics.messages_delivered,
            result.metrics.total_bits,
            if exact { "yes" } else { "NO" }
        );
        assert!(exact, "battery cell failed to map exactly");
    }

    println!();
    for (name, _) in &topologies {
        let cells: Vec<_> = grid.iter().filter(|c| &c.topology == name).collect();
        let min = cells
            .iter()
            .map(|c| c.run.result.metrics.messages_delivered)
            .min()
            .unwrap_or(0);
        let max = cells
            .iter()
            .map(|c| c.run.result.metrics.messages_delivered)
            .max()
            .unwrap_or(0);
        println!(
            "{name}: adversary stretches deliveries {min} → {max} ({:.2}x)",
            max as f64 / min.max(1) as f64
        );
    }
    Ok(())
}
