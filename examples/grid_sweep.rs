//! Scenario scaling on the sweep subsystem: declare a sweep spec, fan its
//! shards over a worker thread per shard, and read the merged JSONL back.
//!
//! The paper's correctness claims are universally quantified over delivery
//! orders; a sweep approximates that quantifier at scale. This example drives
//! the same machinery the `sweep` CLI runs across OS *processes*
//! ([`anet_sweep::run_sweep_threaded`] shares `execute_unit` and the merge
//! with the process path), so its output is byte-identical no matter how many
//! shards — or which machines — executed the units. Results come back in
//! canonical (protocol, topology, seed, scheduler) manifest order regardless
//! of thread timing, so the printed table is reproducible run to run.
//!
//! Run with: `cargo run --release --example grid_sweep`
//!
//! For the multi-process version of the same sweep:
//! `cargo run --release -p anet-sweep --bin sweep -- --shards 4`

use anet_sweep::{Manifest, Partition, ProtocolSpec, RunRecord, SweepSpec, TopologySpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = SweepSpec {
        protocols: vec![ProtocolSpec::Mapping],
        topologies: vec![
            TopologySpec::ChainGn { n: 12 },
            TopologySpec::CycleWithTail { k: 16 },
            TopologySpec::NestedCycles { count: 3, len: 5 },
            TopologySpec::CompleteDag { internal: 12 },
            TopologySpec::RandomCyclic {
                internal: 24,
                forward_pct: 12,
                back_pct: 18,
                seed: 2007,
            },
            TopologySpec::RandomDag {
                internal: 24,
                edge_pct: 20,
                seed: 2007,
            },
        ],
        seeds: vec![42],
        random_schedulers: 3,
        max_deliveries: 10_000_000,
        scenarios: vec![anet_sweep::ScenarioSpec::Pristine],
    };

    let shards = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let manifest = Manifest::from_spec(&spec);
    println!(
        "sweeping {} units ({} topologies x battery) on {} shard thread(s)\n",
        manifest.len(),
        spec.topologies.len(),
        shards
    );

    let merged = anet_sweep::run_sweep_threaded(&spec, shards, Partition::Hash)?;
    let records: Vec<RunRecord> = merged
        .lines()
        .map(|line| RunRecord::parse_line(line).expect("merged lines are canonical"))
        .collect();

    println!(
        "{:<18} {:<15} {:>10} {:>12} {:>8}",
        "topology", "scheduler", "deliveries", "total bits", "exact"
    );
    for r in &records {
        println!(
            "{:<18} {:<15} {:>10} {:>12} {:>8}",
            r.topology,
            r.scheduler,
            r.delivered,
            r.total_bits,
            if r.ok { "yes" } else { "NO" }
        );
        assert!(r.ok, "sweep cell failed to map exactly");
    }

    println!();
    for topology in &spec.topologies {
        let name = topology.name();
        let cells: Vec<&RunRecord> = records.iter().filter(|r| r.topology == name).collect();
        let min = cells.iter().map(|r| r.delivered).min().unwrap_or(0);
        let max = cells.iter().map(|r| r.delivered).max().unwrap_or(0);
        println!(
            "{name}: adversary stretches deliveries {min} -> {max} ({:.2}x)",
            max as f64 / min.max(1) as f64
        );
    }
    Ok(())
}
