//! Quickstart: broadcast a message over a small anonymous grounded tree and watch
//! the terminal detect completion.
//!
//! Run with: `cargo run --example quickstart`

use anet::graph::{classify, generators};
use anet::protocols::tree_broadcast::run_tree_broadcast;
use anet::protocols::{Payload, Pow2Commodity};
use anet::sim::scheduler::FifoScheduler;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The chain family G_n from Figure 5 of the paper: s -> v1 -> ... -> vn, with
    // every v_i also wired straight to the terminal t.
    let network = generators::chain_gn(16)?;
    let stats = classify::stats(&network);
    println!("network: {} vertices, {} edges", stats.nodes, stats.edges);
    println!(
        "grounded tree: {}, every vertex connected to t: {}",
        stats.grounded_tree, stats.all_coreachable
    );

    // Broadcast a payload with the power-of-two commodity rule (Theorem 3.1).
    let report = run_tree_broadcast::<Pow2Commodity>(
        &network,
        Payload::from_bytes(b"hello, anonymous world"),
        &mut FifoScheduler::new(),
    )?;

    println!();
    println!("terminated:          {}", report.terminated);
    println!("all vertices got m:  {}", report.all_received);
    println!("messages sent:       {}", report.metrics.messages_sent);
    println!("total bits:          {}", report.total_bits());
    println!("bandwidth (bits):    {}", report.bandwidth_bits());
    println!("largest message:     {} bits", report.max_message_bits());

    // The same broadcast refuses to terminate if some vertex cannot reach t —
    // that is the whole point of the termination commodity.
    let broken = generators::with_stranded_vertex(&network)?;
    let refused = run_tree_broadcast::<Pow2Commodity>(
        &broken,
        Payload::from_bytes(b"hello again"),
        &mut FifoScheduler::new(),
    )?;
    println!();
    println!(
        "with a stranded vertex attached: terminated = {}, quiescent = {}",
        refused.terminated, refused.quiescent
    );
    Ok(())
}
