//! A peer-to-peer overlay scenario: anonymous peers with one-way connections
//! (NAT'd peers can open outbound links that cannot be reused inbound). A tracker
//! (`t`) wants unique identifiers for every peer and a full map of the overlay,
//! starting from a single bootstrap node fed by `s`.
//!
//! This is the "mapping" half of the paper: label assignment (Section 5) followed
//! by topology extraction by flooding local information (Section 6).
//!
//! Run with: `cargo run --example p2p_mapping`

use anet::graph::{classify, dot, generators};
use anet::protocols::labeling::{label_bits, run_labeling};
use anet::protocols::mapping::run_mapping;
use anet::sim::scheduler::FifoScheduler;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(7);
    let overlay = generators::random_cyclic(&mut rng, 18, 0.12, 0.18)?;
    println!(
        "overlay: {} peers, {} one-way connections, contains cycles: {}",
        overlay.node_count(),
        overlay.edge_count(),
        !classify::is_dag(overlay.graph())
    );

    // Phase 1 — unique identities out of nothing (Theorem 5.1).
    let labels = run_labeling(&overlay, &mut FifoScheduler::new())?;
    println!();
    println!("label assignment terminated: {}", labels.terminated);
    println!("labels unique:               {}", labels.labels_unique);
    println!(
        "largest label:               {} bits",
        labels.max_label_bits
    );
    let v = overlay.node_count() as f64;
    let d = overlay.max_out_degree() as f64;
    println!(
        "paper bound O(|V| log d_out): {} x log2({}) = {:.0} bits (same order)",
        v,
        d,
        v * d.log2()
    );

    // Phase 2 — extract the whole topology at the tracker (Section 6).
    let map = run_mapping(&overlay, &mut FifoScheduler::new())?;
    println!();
    println!("mapping terminated:          {}", map.terminated);
    let topo = map
        .topology
        .as_ref()
        .expect("terminated mapping carries a topology");
    println!(
        "tracker's map:               {} peers, {} connections",
        topo.vertex_count(),
        topo.edge_count()
    );
    println!(
        "map is exact:                {}",
        map.reconstruction_is_exact(&overlay)
    );

    // Render the overlay with its assigned labels for inspection.
    let dot = dot::to_dot_with_labels(&overlay, |node| {
        let label = &map.labels[node.index()];
        if label.is_empty() {
            None
        } else {
            Some(format!("{} bits", label_bits(label)))
        }
    });
    println!();
    println!("Graphviz rendering of the labelled overlay:\n");
    println!("{dot}");
    Ok(())
}
