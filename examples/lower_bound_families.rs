//! A tour of the paper's lower-bound constructions, executed rather than proved:
//! the chain family `G_n` (Figure 5), the skeleton graphs (Figure 4) and the
//! pruned trees (Figure 6).
//!
//! Run with: `cargo run --example lower_bound_families`

use anet::lowerbounds::chain_family::chain_family_experiment;
use anet::lowerbounds::pruning::pruning_experiment;
use anet::lowerbounds::skeleton::skeleton_experiment;
use anet::protocols::Pow2Commodity;

fn main() {
    println!("== Figure 5 / Theorem 3.2: the chain family G_n ==");
    println!("Any correct broadcast needs Ω(n) distinct symbols on G_n; the paper's");
    println!("power-of-two protocol meets that with equality:");
    for point in chain_family_experiment::<Pow2Commodity>(&[4, 16, 64, 256], 0) {
        println!(
            "  n = {:>4}  |E| = {:>4}  distinct symbols = {:>4}  total bits = {:>7}  total/(|E| log|E|) = {:.2}",
            point.n,
            point.edges,
            point.stats.distinct_symbols,
            point.stats.total_bits,
            point.normalized_total_bits()
        );
    }

    println!();
    println!("== Figure 4 / Theorem 3.8: skeleton graphs ==");
    println!("Every subset S of even side-vertices produces a different quantity at the");
    println!("collector w, so a commodity-preserving protocol needs Ω(|E|) bits on one edge:");
    for n in [2usize, 4, 6, 8] {
        let o = skeleton_experiment::<Pow2Commodity>(n, 1 << n);
        println!(
            "  n = {:>2}  subsets = {:>4}  distinct quantities = {:>4}  all distinct = {}  bits needed on w->t >= {}",
            o.n, o.subsets_tested, o.distinct_quantities, o.all_distinct, o.min_bits_on_collector_edge
        );
    }

    println!();
    println!("== Figure 6 / Theorem 5.2: pruned trees ==");
    println!("The pruned tree has only h+3 vertices, yet the deep vertex keeps the label it");
    println!("would get in the full d-ary tree — Ω(h log d) bits:");
    for (h, d) in [(3usize, 3usize), (8, 4), (32, 4), (16, 16)] {
        let o = pruning_experiment(h, d, h <= 3);
        println!(
            "  h = {:>2} d = {:>2}  pruned |V| = {:>3}  deep label = {:>5} bits  h·log2(d) = {:>6.1}  match vs full tree: {}",
            o.height,
            o.arity,
            o.pruned_nodes,
            o.pruned_deep_label_bits,
            o.h_log_d,
            o.labels_match_along_path
                .map(|b| b.to_string())
                .unwrap_or_else(|| "(full tree too large to simulate)".to_owned())
        );
    }
}
