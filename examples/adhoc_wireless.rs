//! An ad-hoc wireless scenario: a field of sensor nodes with *asymmetric* radio
//! links (a strong node can reach a weak one but not vice versa), no identifiers,
//! and no knowledge of the field's size — exactly the anonymous directed model.
//! A gateway (`s`) floods a firmware announcement and a collector (`t`) must know
//! when every sensor has received it, even though the link graph contains cycles.
//!
//! Run with: `cargo run --example adhoc_wireless`

use anet::graph::{classify, generators};
use anet::protocols::general_broadcast::run_general_broadcast;
use anet::protocols::Payload;
use anet::sim::scheduler::{FifoScheduler, RandomScheduler, Scheduler};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A randomly deployed field: 60 sensors, sparse asymmetric links, some of which
    // form cycles (two-way reachability between clusters).
    let mut rng = StdRng::seed_from_u64(42);
    let field = generators::random_cyclic(&mut rng, 60, 0.06, 0.08)?;
    let stats = classify::stats(&field);
    println!(
        "sensor field: {} nodes, {} directed links, max fan-out {}, acyclic: {}",
        stats.nodes, stats.edges, stats.max_out_degree, stats.dag
    );

    let firmware = Payload::synthetic(2048); // a 2 kbit announcement

    // The asynchronous network can deliver in any order; try a few.
    let mut schedulers: Vec<(&str, Box<dyn Scheduler>)> = vec![
        ("fifo", Box::new(FifoScheduler::new())),
        ("random-1", Box::new(RandomScheduler::seeded(1))),
        ("random-2", Box::new(RandomScheduler::seeded(2))),
    ];
    for (name, scheduler) in schedulers.iter_mut() {
        let report = run_general_broadcast(&field, firmware.clone(), scheduler.as_mut())?;
        println!();
        println!("delivery order `{name}`:");
        println!("  every sensor reached:   {}", report.all_received);
        println!("  collector detected it:  {}", report.terminated);
        println!("  messages on the air:    {}", report.metrics.messages_sent);
        println!("  total traffic:          {} bits", report.total_bits());
        println!("  busiest link carried:   {} bits", report.bandwidth_bits());
    }

    // A sensor that can hear the gateway but has no route back towards the
    // collector makes completion undetectable — the collector correctly never
    // declares success.
    let with_dead_end = generators::with_stranded_vertex(&field)?;
    let report = run_general_broadcast(&with_dead_end, firmware, &mut FifoScheduler::new())?;
    println!();
    println!(
        "with an unreachable-collector sensor: terminated = {}, quiescent = {}",
        report.terminated, report.quiescent
    );
    Ok(())
}
